// Contract-macro coverage: death tests for BCOP_CHECK (always on) and for
// the BCOP_DCHECK bounds checks that light up under -DBCOP_BOUNDS_CHECK=ON.
// In a default build the DCHECK cases are skipped, documenting that the
// accessors are intentionally unchecked there.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/architecture.hpp"
#include "core/predictor.hpp"
#include "nn/init.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/batcher.hpp"
#include "tensor/bit_tensor.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/image.hpp"
#include "util/rng.hpp"

namespace {

using bcop::tensor::BitMatrix;
using bcop::tensor::Shape;
using bcop::tensor::Tensor;

// Death tests re-execute the test body in a forked child; "threadsafe"
// keeps that correct even when a sanitizer runtime spawns threads.
const bool kDeathTestStyle = [] {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  return true;
}();

#if defined(BCOP_BOUNDS_CHECK) && BCOP_BOUNDS_CHECK
constexpr bool kBoundsChecked = true;
#else
constexpr bool kBoundsChecked = false;
#endif

#define SKIP_UNLESS_BOUNDS_CHECKED()                                   \
  if (!kBoundsChecked)                                                 \
  GTEST_SKIP() << "accessor intentionally unchecked without BCOP_BOUNDS_CHECK"

// --- BCOP_CHECK: active in every build type -------------------------------

TEST(CheckMacroDeathTest, CheckFiresWithFormattedMessage) {
  const std::int64_t bad = -3;
  EXPECT_DEATH(BCOP_CHECK(bad >= 0, "got %lld", static_cast<long long>(bad)),
               "CHECK failed: bad >= 0: got -3");
}

TEST(CheckMacroDeathTest, CheckWithoutMessage) {
  EXPECT_DEATH(BCOP_CHECK(1 == 2), "CHECK failed: 1 == 2");
}

TEST(CheckMacroTest, PassingCheckEvaluatesConditionOnce) {
  int calls = 0;
  BCOP_CHECK([&] { return ++calls; }() == 1, "side effect ran %d times", calls);
  EXPECT_EQ(calls, 1);
}

TEST(CheckMacroDeathTest, GlorotRejectsNonPositiveFan) {
  bcop::util::Rng rng(1);
  Tensor w(Shape{2, 2});
  EXPECT_DEATH(bcop::nn::glorot_uniform(w, 0, 4, rng), "non-positive fan");
}

TEST(CheckMacroDeathTest, ThreadPoolRejectsEmptyTask) {
  bcop::parallel::ThreadPool pool(0);
  EXPECT_DEATH(pool.submit(std::function<void()>{}), "empty std::function");
}

// classify_batch validates the batch against the folded topology up front;
// a mis-shaped batch would otherwise flow through conv/pool stages and only
// explode at the flatten boundary.
TEST(CheckMacroDeathTest, ClassifyBatchRejectsWrongRank) {
  const bcop::core::Predictor p(
      bcop::core::build_bnn(bcop::core::ArchitectureId::kMicroCnv, 31));
  EXPECT_DEATH(p.classify_batch(Tensor(Shape{32, 32, 3})), "rank-4");
}

TEST(CheckMacroDeathTest, ClassifyBatchRejectsEmptyBatch) {
  const bcop::core::Predictor p(
      bcop::core::build_bnn(bcop::core::ArchitectureId::kMicroCnv, 31));
  EXPECT_DEATH(p.classify_batch(Tensor(Shape{0, 32, 32, 3})), "empty batch");
}

TEST(CheckMacroDeathTest, ClassifyBatchRejectsWrongImageShape) {
  const bcop::core::Predictor p(
      bcop::core::build_bnn(bcop::core::ArchitectureId::kMicroCnv, 31));
  EXPECT_DEATH(p.classify_batch(Tensor(Shape{1, 16, 16, 3})),
               "does not match");
  EXPECT_DEATH(p.classify_batch(Tensor(Shape{2, 32, 32, 1})),
               "does not match");
}

TEST(CheckMacroDeathTest, BatchingServerRejectsDegenerateConfig) {
  const bcop::core::Predictor p(
      bcop::core::build_bnn(bcop::core::ArchitectureId::kMicroCnv, 31));
  bcop::serve::BatcherConfig bad;
  bad.max_batch = 0;
  EXPECT_DEATH(bcop::serve::BatchingServer(p, bad), "max_batch");
  bad.max_batch = 4;
  bad.queue_capacity = 0;
  EXPECT_DEATH(bcop::serve::BatchingServer(p, bad), "queue_capacity");
}

// --- BCOP_DCHECK: bounds checks under BCOP_BOUNDS_CHECK=ON ----------------

TEST(TensorBoundsDeathTest, At4OutOfRange) {
  SKIP_UNLESS_BOUNDS_CHECKED();
  Tensor t(Shape{1, 4, 4, 3});
  EXPECT_DEATH(t.at4(0, 4, 0, 0), "out of bounds");
  EXPECT_DEATH(t.at4(0, 0, 0, 3), "out of bounds");
  EXPECT_DEATH(t.at4(0, 0, -1, 0), "out of bounds");
}

TEST(TensorBoundsDeathTest, At4OnWrongRank) {
  SKIP_UNLESS_BOUNDS_CHECKED();
  Tensor t(Shape{4, 4});
  EXPECT_DEATH(t.at4(0, 0, 0, 0), "at4 on rank-2 tensor");
}

TEST(TensorBoundsDeathTest, At2OutOfRange) {
  SKIP_UNLESS_BOUNDS_CHECKED();
  Tensor t(Shape{3, 5});
  EXPECT_DEATH(t.at2(3, 0), "out of bounds");
  EXPECT_DEATH(t.at2(0, 5), "out of bounds");
}

TEST(TensorBoundsDeathTest, FlatIndexOutOfRange) {
  SKIP_UNLESS_BOUNDS_CHECKED();
  Tensor t(Shape{2, 2});
  EXPECT_DEATH(t[4], "flat index 4 out of");
  EXPECT_DEATH(t[-1], "flat index -1 out of");
}

TEST(TensorBoundsTest, InRangeAccessorsStillWork) {
  Tensor t(Shape{1, 2, 2, 1});
  t.at4(0, 1, 1, 0) = 7.f;
  EXPECT_EQ(t.at4(0, 1, 1, 0), 7.f);
  EXPECT_EQ(t[3], 7.f);
}

TEST(TensorBoundsTest, ReshapedMismatchThrowsInEveryBuild) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW(t.reshaped(Shape{4, 2}), std::invalid_argument);
  EXPECT_NO_THROW(t.reshaped(Shape{3, 2}));
}

TEST(BitMatrixBoundsDeathTest, BitIndexOutOfRange) {
  SKIP_UNLESS_BOUNDS_CHECKED();
  BitMatrix m(2, 70);  // two words per row; bit 70 is in-word but invalid
  EXPECT_DEATH(m.get(0, 70), "bit 70 out of");
  EXPECT_DEATH(m.get(0, -1), "bit -1 out of");
  EXPECT_DEATH(m.set_from_sign(0, 128, 1.f), "bit 128 out of");
}

TEST(BitMatrixBoundsDeathTest, RowIndexOutOfRange) {
  SKIP_UNLESS_BOUNDS_CHECKED();
  BitMatrix m(2, 64);
  EXPECT_DEATH(m.row(2), "row 2 out of");
  EXPECT_DEATH(m.get(-1, 0), "row -1 out of");
}

TEST(ImageBoundsDeathTest, PixelOutOfRange) {
  SKIP_UNLESS_BOUNDS_CHECKED();
  bcop::util::Image img(4, 6);
  EXPECT_DEATH(img.at(4, 0, 0), "out of 4x6x3");
  EXPECT_DEATH(img.at(0, 6, 0), "out of 4x6x3");
  EXPECT_DEATH(img.set_rgb(-1, 0, 0.f, 0.f, 0.f), "out of 4x6x3");
}

TEST(ImageBoundsTest, ClippedVariantsStayDefinedOutOfRange) {
  // The *_clipped entry points are the sanctioned way to write near edges;
  // they must silently drop out-of-range pixels even with checks on.
  bcop::util::Image img(4, 6);
  img.set_rgb_clipped(-1, 0, 1.f, 1.f, 1.f);
  img.blend_rgb_clipped(0, 99, 1.f, 1.f, 1.f, 0.5f);
  EXPECT_EQ(img.at(0, 0, 0), 0.f);
}

TEST(ShapeBoundsTest, IndexThrowsInEveryBuild) {
  Shape s{2, 3};
  EXPECT_THROW(s[2], std::out_of_range);
  EXPECT_THROW(s[-1], std::out_of_range);
}

}  // namespace
