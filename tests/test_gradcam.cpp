#include <gtest/gtest.h>

#include <cmath>

#include "core/architecture.hpp"
#include "facegen/renderer.hpp"
#include "facegen/dataset.hpp"
#include "gradcam/attention.hpp"
#include "gradcam/gradcam.hpp"
#include "gradcam/overlay.hpp"
#include "nn/batchnorm.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bcop;
using bcop::tensor::Shape;
using bcop::tensor::Tensor;

nn::Sequential ucnv_model() {
  return core::build_bnn(core::ArchitectureId::kMicroCnv, 17);
}

Tensor face_input(std::uint64_t seed, facegen::MaskClass cls,
                  facegen::Regions* regions = nullptr) {
  util::Rng rng(seed);
  const auto rendered =
      facegen::render_face(facegen::sample_attributes(cls, rng));
  if (regions) *regions = rendered.regions;
  return facegen::MaskedFaceDataset::image_to_tensor(rendered.image);
}

TEST(GradCam, ProducesNormalizedMapsAtConv22Resolution) {
  nn::Sequential model = ucnv_model();
  gradcam::GradCam cam(model, core::gradcam_layer_index(model));
  const auto result = cam.compute(face_input(1, facegen::MaskClass::kCorrect));
  EXPECT_EQ(result.fm_h, 5);
  EXPECT_EQ(result.fm_w, 5);
  EXPECT_EQ(result.heatmap.size(), 25u);
  EXPECT_EQ(result.upsampled.size(), 32u * 32u);
  float mx = 0;
  for (const float v : result.heatmap) {
    EXPECT_GE(v, 0.f);
    EXPECT_LE(v, 1.f);
    EXPECT_FALSE(std::isnan(v));
    mx = std::max(mx, v);
  }
  EXPECT_TRUE(mx == 0.f || std::abs(mx - 1.f) < 1e-6f);
}

TEST(GradCam, TargetClassIsHonored) {
  nn::Sequential model = ucnv_model();
  gradcam::GradCam cam(model, core::gradcam_layer_index(model));
  const Tensor x = face_input(2, facegen::MaskClass::kNoseExposed);
  const auto r0 = cam.compute(x, 0);
  const auto r3 = cam.compute(x, 3);
  EXPECT_EQ(r0.target_class, 0);
  EXPECT_EQ(r3.target_class, 3);
  EXPECT_EQ(r0.predicted_class, r3.predicted_class);
}

TEST(GradCam, DoesNotPolluteBatchNormRunningStats) {
  nn::Sequential model = ucnv_model();
  std::vector<float> means_before;
  for (std::size_t i = 0; i < model.size(); ++i)
    if (auto* bn = dynamic_cast<nn::BatchNorm*>(&model.layer(i)))
      means_before.push_back(bn->running_mean()[0]);

  gradcam::GradCam cam(model, core::gradcam_layer_index(model));
  cam.compute(face_input(3, facegen::MaskClass::kChinExposed));

  std::size_t idx = 0;
  for (std::size_t i = 0; i < model.size(); ++i)
    if (auto* bn = dynamic_cast<nn::BatchNorm*>(&model.layer(i))) {
      EXPECT_FLOAT_EQ(bn->running_mean()[0], means_before[idx++]);
      EXPECT_FALSE(bn->frozen());  // restored afterwards
    }
}

TEST(GradCam, WorksOnFp32Baseline) {
  nn::Sequential model = core::build_fp32_cnv(19);
  gradcam::GradCam cam(model, core::gradcam_layer_index(model));
  const auto result = cam.compute(face_input(4, facegen::MaskClass::kCorrect));
  EXPECT_EQ(result.fm_h, 5);
  for (const float v : result.upsampled) EXPECT_FALSE(std::isnan(v));
}

TEST(GradCam, InvalidArgumentsThrow) {
  nn::Sequential model = ucnv_model();
  EXPECT_THROW(gradcam::GradCam(model, 999), std::invalid_argument);
  gradcam::GradCam cam(model, core::gradcam_layer_index(model));
  EXPECT_THROW(cam.compute(Tensor(Shape{2, 32, 32, 3})),
               std::invalid_argument);
  EXPECT_THROW(cam.compute(face_input(5, facegen::MaskClass::kCorrect), 9),
               std::invalid_argument);
}

TEST(Overlay, HeatColorEndpoints) {
  float r, g, b;
  gradcam::heat_color(0.f, r, g, b);
  EXPECT_GT(b, 0.9f);  // cold = blue
  EXPECT_LT(r, 0.1f);
  gradcam::heat_color(1.f, r, g, b);
  EXPECT_GT(r, 0.9f);  // hot = red
  EXPECT_LT(b, 0.1f);
}

TEST(Overlay, OverlayKeepsColdPixelsIntact) {
  util::Image base(4, 4, 0.3f);
  std::vector<float> heat(16, 0.f);
  heat[5] = 1.f;
  const util::Image out = gradcam::overlay(base, heat, 0.5f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 0.3f);  // zero heat -> untouched
  EXPECT_GT(out.at(1, 1, 0), 0.3f);        // hot pixel pulled toward red
}

TEST(Overlay, SizeMismatchThrows) {
  util::Image base(4, 4);
  EXPECT_THROW(gradcam::overlay(base, std::vector<float>(9, 0.f)),
               std::invalid_argument);
  EXPECT_THROW(gradcam::colorize(std::vector<float>(9, 0.f), 2, 2),
               std::invalid_argument);
}

TEST(Overlay, HstackConcatenatesWidths) {
  const util::Image a(4, 3), b(4, 5);
  const util::Image out = gradcam::hstack({a, b});
  EXPECT_EQ(out.height(), 4);
  EXPECT_EQ(out.width(), 3 + 1 + 5);
  EXPECT_THROW(gradcam::hstack({a, util::Image(5, 3)}), std::invalid_argument);
  EXPECT_THROW(gradcam::hstack({}), std::invalid_argument);
}

TEST(Attention, RegionMassFractions) {
  std::vector<float> heat(16, 0.f);
  // All mass in the top-left quadrant of a 4x4 map.
  heat[0] = heat[1] = heat[4] = heat[5] = 1.f;
  const facegen::Rect top_left{0.f, 0.f, 0.5f, 0.5f};
  const facegen::Rect bottom{0.f, 0.5f, 1.f, 1.f};
  EXPECT_NEAR(gradcam::region_mass(heat, 4, 4, top_left), 1.0, 1e-9);
  EXPECT_NEAR(gradcam::region_mass(heat, 4, 4, bottom), 0.0, 1e-9);
  // Saliency: quarter of the pixels hold all mass -> 4x the average.
  EXPECT_NEAR(gradcam::region_saliency(heat, 4, 4, top_left), 4.0, 1e-9);
}

TEST(Attention, EmptyHeatmapGivesZero) {
  const std::vector<float> heat(16, 0.f);
  const facegen::Rect r{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(gradcam::region_mass(heat, 4, 4, r), 0.0);
  EXPECT_DOUBLE_EQ(gradcam::region_saliency(heat, 4, 4, r), 0.0);
}

TEST(Attention, ScoreAttentionPicksDominantRegion) {
  facegen::FaceAttributes attrs;  // defaults: centered face
  const auto regions = facegen::compute_regions(attrs);
  // Heat concentrated on the nose region's center.
  std::vector<float> heat(32 * 32, 0.f);
  const float cx = 0.5f * (regions.nose.u0 + regions.nose.u1);
  const float cy = 0.5f * (regions.nose.v0 + regions.nose.v1);
  heat[static_cast<std::size_t>(static_cast<int>(cy * 32) * 32 +
                                static_cast<int>(cx * 32))] = 1.f;
  const auto report = gradcam::score_attention(heat, 32, 32, regions);
  EXPECT_EQ(report.dominant, "nose");
  EXPECT_GT(report.nose, 1.0);
}

}  // namespace
