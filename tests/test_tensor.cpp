#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace {

using bcop::tensor::Shape;
using bcop::tensor::Tensor;

TEST(Shape, BasicProperties) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.str(), "[2, 3, 4]");
}

TEST(Shape, EmptyShape) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 0);
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{1, 2}), (Shape{1, 2}));
  EXPECT_NE((Shape{1, 2}), (Shape{2, 1}));
  EXPECT_NE((Shape{1, 2}), (Shape{1, 2, 1}));
}

TEST(Shape, OutOfRangeIndexThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(s[2], std::out_of_range);
  EXPECT_THROW(s[-1], std::out_of_range);
}

TEST(Shape, NegativeDimensionThrows) {
  EXPECT_THROW((Shape{2, -1}), std::invalid_argument);
}

TEST(Tensor, FillAndIndex) {
  Tensor t(Shape{2, 3}, 1.5f);
  EXPECT_EQ(t.numel(), 6);
  EXPECT_FLOAT_EQ(t[5], 1.5f);
  t.fill(-2.f);
  EXPECT_FLOAT_EQ(t.at2(1, 2), -2.f);
}

TEST(Tensor, At4MatchesRowMajorNhwc) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.f;
  EXPECT_FLOAT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 6});
  for (std::int64_t i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshaped(Shape{3, 4});
  EXPECT_EQ(r.shape(), (Shape{3, 4}));
  for (std::int64_t i = 0; i < 12; ++i) EXPECT_FLOAT_EQ(r[i], static_cast<float>(i));
}

TEST(Tensor, ReshapeNumelMismatchThrows) {
  const Tensor t(Shape{2, 6});
  EXPECT_THROW(t.reshaped(Shape{5}), std::invalid_argument);
}

TEST(Ops, Argmax) {
  const float v[] = {0.1f, 3.f, -1.f, 3.f};
  EXPECT_EQ(bcop::tensor::argmax(v, 4), 1);  // first maximum wins
}

TEST(Ops, ArgmaxRows) {
  Tensor m(Shape{2, 3});
  m.at2(0, 2) = 5.f;
  m.at2(1, 0) = 1.f;
  const auto idx = bcop::tensor::argmax_rows(m);
  EXPECT_EQ(idx[0], 2);
  EXPECT_EQ(idx[1], 0);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Tensor m(Shape{2, 4});
  m.at2(0, 0) = 100.f;  // stability under large logits
  m.at2(1, 3) = -100.f;
  const Tensor p = bcop::tensor::softmax_rows(m);
  for (std::int64_t r = 0; r < 2; ++r) {
    float sum = 0;
    for (std::int64_t c = 0; c < 4; ++c) {
      EXPECT_GE(p.at2(r, c), 0.f);
      sum += p.at2(r, c);
    }
    EXPECT_NEAR(sum, 1.f, 1e-5f);
  }
  EXPECT_GT(p.at2(0, 0), 0.99f);
}

TEST(Ops, ReluInplace) {
  Tensor t(Shape{3});
  t[0] = -1.f;
  t[1] = 0.f;
  t[2] = 2.f;
  bcop::tensor::relu_inplace(t);
  EXPECT_FLOAT_EQ(t[0], 0.f);
  EXPECT_FLOAT_EQ(t[1], 0.f);
  EXPECT_FLOAT_EQ(t[2], 2.f);
}

TEST(Ops, MeanAndMaxAbsDiff) {
  Tensor a(Shape{4}, 1.f), b(Shape{4}, 1.f);
  b[2] = -1.f;
  EXPECT_DOUBLE_EQ(bcop::tensor::mean(a), 1.0);
  EXPECT_FLOAT_EQ(bcop::tensor::max_abs_diff(a, b), 2.f);
  EXPECT_THROW(bcop::tensor::max_abs_diff(a, Tensor(Shape{3})),
               std::invalid_argument);
}

TEST(Ops, BilinearResizeIdentity) {
  const std::vector<float> src = {1.f, 2.f, 3.f, 4.f};
  const auto same = bcop::tensor::bilinear_resize(src, 2, 2, 2, 2);
  EXPECT_EQ(same, src);
}

TEST(Ops, BilinearResizeInterpolatesMidpoints) {
  const std::vector<float> src = {0.f, 1.f};  // 1x2
  const auto up = bcop::tensor::bilinear_resize(src, 1, 2, 1, 3);
  ASSERT_EQ(up.size(), 3u);
  EXPECT_FLOAT_EQ(up[0], 0.f);
  EXPECT_FLOAT_EQ(up[1], 0.5f);
  EXPECT_FLOAT_EQ(up[2], 1.f);
}

TEST(Ops, BilinearResizeUpscalePreservesRange) {
  std::vector<float> src(5 * 5);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<float>(i % 3) / 2.f;
  const auto up = bcop::tensor::bilinear_resize(src, 5, 5, 32, 32);
  EXPECT_EQ(up.size(), 32u * 32u);
  for (const float v : up) {
    EXPECT_GE(v, 0.f);
    EXPECT_LE(v, 1.f);
  }
}

}  // namespace
