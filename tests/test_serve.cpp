// Serving-layer tests: batch invariance of the bit-domain batched path
// (classifying images together must give exactly the same answers as
// classifying them alone) and functional coverage of the request-coalescing
// BatchingServer. Heavier concurrency hammering lives in
// test_serve_stress.cpp so it can run under ThreadSanitizer.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <vector>

#include "core/architecture.hpp"
#include "core/predictor.hpp"
#include "facegen/dataset.hpp"
#include "facegen/renderer.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "serve/batcher.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcop;
using tensor::Shape;
using tensor::Tensor;

core::Predictor make_predictor(std::uint64_t seed) {
  return core::Predictor(core::build_bnn(core::ArchitectureId::kMicroCnv, seed));
}

Tensor random_batch(std::int64_t n, util::Rng& rng) {
  Tensor batch(Shape{n, 32, 32, 3});
  for (std::int64_t i = 0; i < batch.numel(); ++i)
    batch[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return batch;
}

Tensor nth_image(const Tensor& batch, std::int64_t n) {
  const std::int64_t stride = batch.numel() / batch.shape()[0];
  Tensor image(Shape{1, batch.shape()[1], batch.shape()[2], batch.shape()[3]});
  std::memcpy(image.data(), batch.data() + n * stride,
              static_cast<std::size_t>(stride) * sizeof(float));
  return image;
}

void expect_same_result(const core::Predictor::Result& a,
                        const core::Predictor::Result& b,
                        std::int64_t image) {
  EXPECT_EQ(a.label, b.label) << "image " << image;
  for (std::size_t c = 0; c < a.scores.size(); ++c)
    EXPECT_FLOAT_EQ(a.scores[c], b.scores[c])
        << "image " << image << " class " << c;
}

TEST(Serve, ExpectedInputShapeInferredFromTopology) {
  const core::Predictor p = make_predictor(1);
  EXPECT_EQ(p.network().expected_input_shape(), (Shape{32, 32, 3}));
}

// classify_batch(concat(images)) == concat(classify(image)) -- the batched
// bit-domain path must be invariant to how requests are grouped. Odd batch
// sizes exercise the sub-word padding lanes of the packed representation.
TEST(Serve, BatchInvarianceForOddSizes) {
  const core::Predictor p = make_predictor(2);
  util::Rng rng(3);
  for (const std::int64_t n : {1, 3, 7, 17}) {
    const Tensor batch = random_batch(n, rng);
    const auto together = p.classify_batch(batch);
    ASSERT_EQ(together.size(), static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      const auto alone = p.classify_batch(nth_image(batch, i));
      ASSERT_EQ(alone.size(), 1u);
      expect_same_result(together[static_cast<std::size_t>(i)], alone[0], i);
    }
  }
}

TEST(Serve, ConcatenationProperty) {
  const core::Predictor p = make_predictor(4);
  util::Rng rng(5);
  const Tensor a = random_batch(3, rng);
  const Tensor b = random_batch(7, rng);
  Tensor ab(Shape{10, 32, 32, 3});
  std::memcpy(ab.data(), a.data(),
              static_cast<std::size_t>(a.numel()) * sizeof(float));
  std::memcpy(ab.data() + a.numel(), b.data(),
              static_cast<std::size_t>(b.numel()) * sizeof(float));

  const auto ra = p.classify_batch(a);
  const auto rb = p.classify_batch(b);
  const auto rab = p.classify_batch(ab);
  ASSERT_EQ(rab.size(), ra.size() + rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i)
    expect_same_result(rab[i], ra[i], static_cast<std::int64_t>(i));
  for (std::size_t i = 0; i < rb.size(); ++i)
    expect_same_result(rab[ra.size() + i], rb[i],
                       static_cast<std::int64_t>(ra.size() + i));
}

// More requests than workers: every future resolves and matches the direct
// classify_batch answer for the same image.
TEST(Serve, ServerMatchesDirectClassification) {
  const core::Predictor p = make_predictor(6);
  util::Rng rng(7);
  const std::int64_t kRequests = 17;
  const Tensor batch = random_batch(kRequests, rng);
  const auto direct = p.classify_batch(batch);

  serve::BatcherConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 4;
  serve::BatchingServer server(p, cfg);
  std::vector<std::future<core::Predictor::Result>> futures;
  for (std::int64_t i = 0; i < kRequests; ++i)
    futures.push_back(server.submit(nth_image(batch, i)));
  for (std::int64_t i = 0; i < kRequests; ++i)
    expect_same_result(futures[static_cast<std::size_t>(i)].get(),
                       direct[static_cast<std::size_t>(i)], i);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, kRequests);
  EXPECT_GE(stats.batches, 1);
  EXPECT_LE(stats.max_batch_seen, cfg.max_batch);
}

TEST(Serve, SynchronousModeClassifiesInline) {
  const core::Predictor p = make_predictor(8);
  util::Rng rng(9);
  const Tensor batch = random_batch(3, rng);
  const auto direct = p.classify_batch(batch);

  serve::BatcherConfig cfg;
  cfg.workers = 0;
  serve::BatchingServer server(p, cfg);
  for (std::int64_t i = 0; i < 3; ++i) {
    auto future = server.submit(nth_image(batch, i));
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "workers=0 must resolve synchronously";
    expect_same_result(future.get(), direct[static_cast<std::size_t>(i)], i);
  }
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.batches, 3);
  EXPECT_EQ(stats.coalesced, 0);
}

TEST(Serve, SubmitAcceptsRank3AndSingletonRank4) {
  const core::Predictor p = make_predictor(10);
  util::Rng rng(11);
  const Tensor batch = random_batch(1, rng);

  serve::BatcherConfig cfg;
  cfg.workers = 1;
  serve::BatchingServer server(p, cfg);
  auto a = server.submit(batch);  // [1, 32, 32, 3]
  auto b = server.submit(batch.reshaped(Shape{32, 32, 3}));
  expect_same_result(a.get(), b.get(), 0);
}

TEST(Serve, SubmitRejectsMismatchedImages) {
  const core::Predictor p = make_predictor(12);
  serve::BatcherConfig cfg;
  cfg.workers = 1;
  serve::BatchingServer server(p, cfg);
  // Wrong spatial size for the served u-CNV (wants 32x32x3).
  EXPECT_THROW(server.submit(Tensor(Shape{8, 8, 3})), std::invalid_argument);
  // A real batch is not a request.
  EXPECT_THROW(server.submit(Tensor(Shape{2, 32, 32, 3})),
               std::invalid_argument);
  EXPECT_THROW(server.submit(Tensor(Shape{32, 32})), std::invalid_argument);
}

// try_submit under capacity behaves exactly like submit: a future that
// resolves to the same answer as direct classification.
TEST(Serve, TrySubmitAdmitsUnderCapacity) {
  const core::Predictor p = make_predictor(30);
  util::Rng rng(31);
  const Tensor batch = random_batch(3, rng);
  const auto direct = p.classify_batch(batch);

  serve::BatcherConfig cfg;
  cfg.workers = 1;
  serve::BatchingServer server(p, cfg);
  for (std::int64_t i = 0; i < 3; ++i) {
    auto maybe = server.try_submit(nth_image(batch, i));
    ASSERT_TRUE(maybe.has_value()) << "image " << i;
    expect_same_result(maybe->get(), direct[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(server.stats().requests, 3);
}

// max_depth == 0 sheds every request deterministically (the queue depth,
// zero, is already at the watermark) and counts each rejection in
// bcop_serve_rejected_total -- the accounting the 503 path reconciles
// against in tests/test_net_stress.cpp.
TEST(Serve, TrySubmitShedsAtWatermarkAndCountsRejections) {
  const core::Predictor p = make_predictor(32);
  util::Rng rng(33);
  const Tensor image = nth_image(random_batch(1, rng), 0);

  serve::BatcherConfig cfg;
  cfg.workers = 1;
  serve::BatchingServer server(p, cfg);
  obs::Counter& rejected =
      obs::Registry::global().counter("bcop_serve_rejected_total");
  const std::uint64_t before = rejected.value();
  for (int i = 0; i < 5; ++i)
    EXPECT_FALSE(server.try_submit(image, 0).has_value());
  EXPECT_EQ(rejected.value() - before, 5u);
  EXPECT_EQ(server.stats().requests, 0) << "shed requests never enqueue";

  // The watermark only gates admission; the next unconstrained try_submit
  // is served normally.
  auto maybe = server.try_submit(image);
  ASSERT_TRUE(maybe.has_value());
  maybe->get();
}

// Shape validation is a caller bug, not load: try_submit throws exactly
// like submit instead of reporting nullopt.
TEST(Serve, TrySubmitRejectsMismatchedImages) {
  const core::Predictor p = make_predictor(34);
  serve::BatcherConfig cfg;
  cfg.workers = 1;
  serve::BatchingServer server(p, cfg);
  EXPECT_THROW(server.try_submit(Tensor(Shape{8, 8, 3})),
               std::invalid_argument);
  EXPECT_THROW(server.try_submit(Tensor(Shape{2, 32, 32, 3})),
               std::invalid_argument);
}

// Synchronous mode has no queue to shed from: try_submit classifies inline
// and resolves immediately, mirroring submit.
TEST(Serve, TrySubmitSynchronousModeResolvesInline) {
  const core::Predictor p = make_predictor(35);
  util::Rng rng(36);
  const Tensor image = nth_image(random_batch(1, rng), 0);
  serve::BatcherConfig cfg;
  cfg.workers = 0;
  serve::BatchingServer server(p, cfg);
  auto maybe = server.try_submit(image);
  ASSERT_TRUE(maybe.has_value());
  EXPECT_EQ(maybe->wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
}

TEST(Serve, QueueDepthReflectsPendingRequests) {
  const core::Predictor p = make_predictor(37);
  serve::BatcherConfig cfg;
  cfg.workers = 1;
  serve::BatchingServer server(p, cfg);
  EXPECT_EQ(server.queue_depth(), 0);
  // After draining every submitted request the depth returns to zero (a
  // non-zero transient is timing-dependent, so only the fixed points are
  // asserted).
  util::Rng rng(38);
  auto f = server.submit(nth_image(random_batch(1, rng), 0));
  f.get();
  for (int spin = 0; spin < 1000 && server.queue_depth() != 0; ++spin) {
  }
  EXPECT_EQ(server.queue_depth(), 0);
}

// Lifecycle is never an exception: after shutdown(), submit() returns a
// future that carries the rejection (std::runtime_error at get()) instead
// of unwinding the caller, and try_submit() reports nullopt. Both count
// bcop_serve_rejected_total so drained traffic stays on the ledger.
TEST(Serve, SubmitAfterShutdownReturnsRejectedFuture) {
  const core::Predictor p = make_predictor(40);
  util::Rng rng(41);
  const Tensor image = nth_image(random_batch(1, rng), 0);
  serve::BatcherConfig cfg;
  cfg.workers = 1;
  serve::BatchingServer server(p, cfg);
  server.shutdown();

  obs::Counter& rejected =
      obs::Registry::global().counter("bcop_serve_rejected_total");
  const std::uint64_t before = rejected.value();
  std::future<core::Predictor::Result> future;
  EXPECT_NO_THROW(future = server.submit(image));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "the rejection must already be in the future";
  EXPECT_THROW(future.get(), std::runtime_error);
  EXPECT_FALSE(server.try_submit(image).has_value());
  EXPECT_EQ(rejected.value() - before, 2u);
}

// shutdown() is idempotent and the destructor tolerates an explicit call
// having happened first.
TEST(Serve, ShutdownIsIdempotent) {
  const core::Predictor p = make_predictor(42);
  serve::BatcherConfig cfg;
  cfg.workers = 2;
  serve::BatchingServer server(p, cfg);
  server.shutdown();
  server.shutdown();  // second call must be a no-op, not a hang or crash
}

// Every future accepted before shutdown still resolves: shutdown drains.
TEST(Serve, ShutdownDrainsAcceptedRequests) {
  const core::Predictor p = make_predictor(43);
  util::Rng rng(44);
  const Tensor batch = random_batch(6, rng);
  serve::BatcherConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 2;
  serve::BatchingServer server(p, cfg);
  std::vector<std::future<core::Predictor::Result>> futures;
  for (std::int64_t i = 0; i < 6; ++i)
    futures.push_back(server.submit(nth_image(batch, i)));
  server.shutdown();
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

// Predictor::replicate: the deployment clone classifies identically but
// owns nothing of the training graph.
TEST(Serve, ReplicatedPredictorClassifiesIdentically) {
  const core::Predictor p = make_predictor(45);
  const core::Predictor clone = p.replicate();
  EXPECT_EQ(clone.model().size(), 0u)
      << "replicas serve the folded net only; the float graph stays home";
  EXPECT_EQ(clone.network().expected_input_shape(),
            p.network().expected_input_shape());
  util::Rng rng(46);
  const Tensor batch = random_batch(5, rng);
  const auto a = p.classify_batch(batch);
  const auto b = clone.classify_batch(batch);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    expect_same_result(a[i], b[i], static_cast<std::int64_t>(i));
}

// End to end with rendered faces: the server answers exactly what
// Predictor::classify answers for the same image.
TEST(Serve, ServerAgreesWithClassifyOnFaces) {
  const core::Predictor p = make_predictor(13);
  serve::BatcherConfig cfg;
  cfg.workers = 2;
  serve::BatchingServer server(p, cfg);
  std::vector<util::Image> faces;
  std::vector<std::future<core::Predictor::Result>> futures;
  for (int i = 0; i < 4; ++i) {
    util::Rng rng(static_cast<std::uint64_t>(20 + i));
    faces.push_back(
        facegen::render_face(
            facegen::sample_attributes(static_cast<facegen::MaskClass>(i), rng))
            .image);
    futures.push_back(
        server.submit(facegen::MaskedFaceDataset::image_to_tensor(faces.back())));
  }
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().label,
              p.classify(faces[static_cast<std::size_t>(i)]).label)
        << "face " << i;
}

}  // namespace
