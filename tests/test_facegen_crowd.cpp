#include <gtest/gtest.h>

#include "facegen/crowd.hpp"

namespace {

using namespace bcop;
using facegen::CrowdConfig;
using facegen::Rect;

TEST(Iou, BasicGeometry) {
  const Rect a{0, 0, 0.5f, 0.5f};
  EXPECT_FLOAT_EQ(facegen::iou(a, a), 1.f);
  const Rect b{0.5f, 0.5f, 1, 1};
  EXPECT_FLOAT_EQ(facegen::iou(a, b), 0.f);
  const Rect c{0.25f, 0, 0.75f, 0.5f};  // half-overlap with a
  EXPECT_NEAR(facegen::iou(a, c), (0.25f * 0.5f) / (0.375f), 1e-6f);
}

TEST(Crowd, PlacesRequestedFacesWithoutOverlap) {
  util::Rng rng(1);
  CrowdConfig cfg;
  cfg.faces = 10;
  const auto scene = facegen::render_crowd(cfg, rng);
  EXPECT_EQ(scene.canvas.width(), cfg.canvas_width);
  EXPECT_EQ(scene.canvas.height(), cfg.canvas_height);
  EXPECT_GE(scene.faces.size(), 8u);  // bounded retries may drop a couple
  for (std::size_t i = 0; i < scene.faces.size(); ++i)
    for (std::size_t j = i + 1; j < scene.faces.size(); ++j)
      EXPECT_FLOAT_EQ(facegen::iou(scene.faces[i].bbox, scene.faces[j].bbox), 0.f);
}

TEST(Crowd, ConfigValidation) {
  util::Rng rng(2);
  CrowdConfig cfg;
  cfg.faces = 0;
  EXPECT_THROW(facegen::render_crowd(cfg, rng), std::invalid_argument);
  cfg = CrowdConfig{};
  cfg.max_face_px = cfg.min_face_px - 1;
  EXPECT_THROW(facegen::render_crowd(cfg, rng), std::invalid_argument);
}

TEST(Crowd, CropResizeRecoversAPlacedFace) {
  util::Rng rng(3);
  CrowdConfig cfg;
  cfg.faces = 4;
  const auto scene = facegen::render_crowd(cfg, rng);
  ASSERT_FALSE(scene.faces.empty());
  const auto tile = facegen::crop_resize(scene.canvas, scene.faces[0].bbox, 32);
  EXPECT_EQ(tile.height(), 32);
  EXPECT_EQ(tile.width(), 32);
  // A face tile must not be flat background.
  float mn = 1.f, mx = 0.f;
  for (const float v : tile.data()) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_GT(mx - mn, 0.2f);
}

TEST(Crowd, CropResizeValidation) {
  const util::Image canvas(16, 16);
  EXPECT_THROW(facegen::crop_resize(canvas, {0, 0, 1, 1}, 0),
               std::invalid_argument);
}

TEST(Localizer, FindsMostPlacedFaces) {
  util::Rng rng(4);
  CrowdConfig cfg;
  cfg.faces = 8;
  const auto scene = facegen::render_crowd(cfg, rng);
  ASSERT_GE(scene.faces.size(), 6u);

  const facegen::FaceLocalizer localizer;
  const auto detections =
      localizer.detect(scene.canvas, static_cast<int>(scene.faces.size()) + 4);

  int recalled = 0;
  for (const auto& gt : scene.faces) {
    for (const auto& d : detections)
      if (facegen::iou(gt.bbox, d.bbox) > 0.3f) {
        ++recalled;
        break;
      }
  }
  // The cheap correlation localizer must recall the clear majority.
  EXPECT_GE(static_cast<double>(recalled) /
                static_cast<double>(scene.faces.size()),
            0.7);
}

TEST(Localizer, DetectionsAreSortedAndSuppressed) {
  util::Rng rng(5);
  CrowdConfig cfg;
  cfg.faces = 6;
  const auto scene = facegen::render_crowd(cfg, rng);
  const facegen::FaceLocalizer localizer;
  const auto detections = localizer.detect(scene.canvas, 16);
  for (std::size_t i = 1; i < detections.size(); ++i)
    EXPECT_GE(detections[i - 1].score, detections[i].score);
  for (std::size_t i = 0; i < detections.size(); ++i)
    for (std::size_t j = i + 1; j < detections.size(); ++j)
      EXPECT_LE(facegen::iou(detections[i].bbox, detections[j].bbox), 0.25f);
}

TEST(Localizer, EmptySceneYieldsNoStrongDetections) {
  util::Image canvas(96, 128, 0.5f);  // flat gray, no faces
  const facegen::FaceLocalizer localizer;
  const auto detections = localizer.detect(canvas, 8, 0.4f);
  EXPECT_TRUE(detections.empty());
}

}  // namespace
