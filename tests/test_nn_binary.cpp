// Binary layer semantics: weight binarization, straight-through weight
// gradients, latent clipping and equivalence with explicit {-1,+1} math.
#include <gtest/gtest.h>

#include "nn/binary_conv2d.hpp"
#include "nn/binary_dense.hpp"
#include "tensor/gemm.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bcop;
using bcop::tensor::Shape;
using bcop::tensor::Tensor;
using bcop::testhelpers::random_tensor;

TEST(BinaryDense, ForwardUsesSignOfLatents) {
  util::Rng rng(1);
  nn::BinaryDense layer(4, 2, rng);
  Tensor& w = layer.mutable_latent_weights();
  // Latents with mixed magnitudes; only the sign may matter.
  w.at2(0, 0) = 0.9f;
  w.at2(1, 0) = -0.1f;
  w.at2(2, 0) = 0.0f;  // sign(0) = +1
  w.at2(3, 0) = -0.9f;
  w.at2(0, 1) = -0.2f;
  w.at2(1, 1) = 0.2f;
  w.at2(2, 1) = 0.7f;
  w.at2(3, 1) = 0.01f;

  Tensor x(Shape{1, 4});
  x[0] = 1.f;
  x[1] = 1.f;
  x[2] = -1.f;
  x[3] = -1.f;
  const Tensor y = layer.forward(x, false);
  // Row 0: signs (+,-,+,-): 1*1 + 1*(-1) + (-1)*1 + (-1)*(-1) = 0.
  EXPECT_FLOAT_EQ(y.at2(0, 0), 0.f);
  // Row 1: signs (-,+,+,+): -1 + 1 - 1 - 1 = -2.
  EXPECT_FLOAT_EQ(y.at2(0, 1), -2.f);
}

TEST(BinaryDense, BinarizedWeightsAreBipolar) {
  util::Rng rng(2);
  nn::BinaryDense layer(16, 8, rng);
  const Tensor wb = layer.binarized_weights();
  for (std::int64_t i = 0; i < wb.numel(); ++i)
    EXPECT_TRUE(wb[i] == 1.f || wb[i] == -1.f);
}

TEST(BinaryDense, PostUpdateClipsLatents) {
  util::Rng rng(3);
  nn::BinaryDense layer(4, 4, rng);
  Tensor& w = layer.mutable_latent_weights();
  w[0] = 5.f;
  w[1] = -3.f;
  layer.post_update();
  EXPECT_FLOAT_EQ(w[0], 1.f);
  EXPECT_FLOAT_EQ(w[1], -1.f);
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(w[i], 1.f);
    EXPECT_GE(w[i], -1.f);
  }
}

TEST(BinaryDense, WeightGradientIsStraightThrough) {
  // dL/dW_latent must equal x^T dY -- the gradient with respect to the
  // *binarized* weights passed through unchanged.
  util::Rng rng(4);
  nn::BinaryDense layer(3, 2, rng);
  const Tensor x = random_tensor(Shape{5, 3}, rng);
  const Tensor dy = random_tensor(Shape{5, 2}, rng);
  layer.forward(x, true);
  for (nn::Param* p : layer.params()) {
    p->ensure_grad();
    p->grad.fill(0.f);
  }
  layer.backward(dy);

  Tensor expected(Shape{3, 2});
  tensor::gemm_tn_naive(3, 2, 5, x.data(), dy.data(), expected.data());
  const Tensor& got = layer.params()[0]->grad;
  for (std::int64_t i = 0; i < expected.numel(); ++i)
    EXPECT_NEAR(got[i], expected[i], 1e-4f);
}

TEST(BinaryDense, InputGradientUsesBinarizedWeights) {
  util::Rng rng(5);
  nn::BinaryDense layer(3, 2, rng);
  const Tensor x = random_tensor(Shape{4, 3}, rng);
  const Tensor dy = random_tensor(Shape{4, 2}, rng);
  layer.forward(x, true);
  const Tensor dx = layer.backward(dy);

  const Tensor wb = layer.binarized_weights();
  Tensor expected(Shape{4, 3});
  tensor::gemm_nt_naive(4, 3, 2, dy.data(), wb.data(), expected.data());
  for (std::int64_t i = 0; i < expected.numel(); ++i)
    EXPECT_NEAR(dx[i], expected[i], 1e-4f);
}

TEST(BinaryConv2d, MatchesBinarizedDirectConvolution) {
  util::Rng rng(6);
  nn::BinaryConv2d conv(3, 2, 4, rng);
  const Tensor x = random_tensor(Shape{1, 6, 6, 2}, rng);
  const Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.shape(), (Shape{1, 4, 4, 4}));

  const Tensor wb = conv.binarized_weights();
  for (std::int64_t oy = 0; oy < 4; ++oy)
    for (std::int64_t ox = 0; ox < 4; ++ox)
      for (std::int64_t o = 0; o < 4; ++o) {
        float acc = 0;
        for (std::int64_t ky = 0; ky < 3; ++ky)
          for (std::int64_t kx = 0; kx < 3; ++kx)
            for (std::int64_t c = 0; c < 2; ++c)
              acc += x.at4(0, oy + ky, ox + kx, c) *
                     wb.at2((ky * 3 + kx) * 2 + c, o);
        EXPECT_NEAR(y.at4(0, oy, ox, o), acc, 1e-4f);
      }
}

TEST(BinaryConv2d, BipolarInputGivesIntegerOutputs) {
  util::Rng rng(7);
  nn::BinaryConv2d conv(3, 4, 8, rng);
  Tensor x(Shape{2, 5, 5, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = rng.bernoulli(0.5) ? 1.f : -1.f;
  const Tensor y = conv.forward(x, false);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(y[i], std::round(y[i]));
    // Fan-in 36: outputs bounded and share the fan-in's parity.
    EXPECT_LE(std::abs(y[i]), 36.f);
    EXPECT_EQ(static_cast<int>(std::abs(y[i])) % 2, 0);
  }
}

TEST(BinaryConv2d, PostUpdateClips) {
  util::Rng rng(8);
  nn::BinaryConv2d conv(3, 1, 1, rng);
  conv.mutable_latent_weights()[0] = -7.f;
  conv.post_update();
  EXPECT_FLOAT_EQ(conv.latent_weights()[0], -1.f);
}

TEST(BinaryConv2d, BadShapeThrows) {
  util::Rng rng(9);
  nn::BinaryConv2d conv(3, 2, 4, rng);
  EXPECT_THROW(conv.forward(Tensor(Shape{1, 6, 6, 3}), false),
               std::invalid_argument);
  EXPECT_THROW(nn::BinaryConv2d(0, 2, 4, rng), std::invalid_argument);
}

TEST(BinaryDense, BackwardBeforeForwardThrows) {
  util::Rng rng(10);
  nn::BinaryDense layer(2, 2, rng);
  EXPECT_THROW(layer.backward(Tensor(Shape{1, 2})), std::logic_error);
}

}  // namespace
