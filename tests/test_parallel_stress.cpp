// ThreadPool stress tests targeted at the TSan configuration
// (cmake -DBCOP_SANITIZE=thread). Each scenario exercises a
// synchronisation edge the unit tests in test_parallel.cpp touch only
// once: repeated submit/wait_idle reuse, cross-thread visibility of
// non-atomic writes after wait_idle, exception propagation under
// contention, nested pools, destructor draining, and the zero-worker
// inline mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace {

using bcop::parallel::parallel_for;
using bcop::parallel::parallel_for_chunked;
using bcop::parallel::ThreadPool;

TEST(ThreadPoolStress, SubmitWaitIdleReuseHammer) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    for (int t = 0; t < 16; ++t)
      pool.submit([&total] { total.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    // wait_idle() must establish happens-before with every completed task.
    ASSERT_EQ(total.load(std::memory_order_relaxed), (round + 1) * 16);
  }
}

TEST(ThreadPoolStress, WaitIdlePublishesNonAtomicWrites) {
  // Workers write *plain* ints into disjoint slots; the main thread reads
  // them after wait_idle(). Any missing happens-before edge in the pool is
  // a TSan report here.
  ThreadPool pool(4);
  std::vector<int> slots(64, 0);
  for (int round = 1; round <= 100; ++round) {
    for (std::size_t i = 0; i < slots.size(); ++i)
      pool.submit([&slots, i, round] { slots[i] = round; });
    pool.wait_idle();
    for (std::size_t i = 0; i < slots.size(); ++i) ASSERT_EQ(slots[i], round);
  }
}

TEST(ThreadPoolStress, ExceptionPropagationUnderContention) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    // Several chunks throw concurrently; exactly one exception must reach
    // the caller and the pool must stay usable afterwards.
    EXPECT_THROW(parallel_for(pool, 0, 512,
                              [](std::int64_t i) {
                                if (i % 17 == 3)
                                  throw std::runtime_error("stress boom");
                              }),
                 std::runtime_error);
    std::atomic<int> ok{0};
    parallel_for(pool, 0, 64, [&ok](std::int64_t) {
      ok.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(ok.load(), 64);
  }
}

TEST(ThreadPoolStress, NestedPoolsDoNotInterfere) {
  // Outer workers each drive their own inner pool; locks and condition
  // variables of distinct pools must not entangle.
  ThreadPool outer(2);
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 10; ++round) {
    for (int t = 0; t < 4; ++t) {
      outer.submit([&sum] {
        ThreadPool inner(2);
        parallel_for(inner, 0, 100, [&sum](std::int64_t i) {
          sum.fetch_add(i, std::memory_order_relaxed);
        });
      });
    }
    outer.wait_idle();
  }
  ASSERT_EQ(sum.load(), 10 * 4 * 4950);
}

TEST(ThreadPoolStress, DestructorDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int t = 0; t < 256; ++t)
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    // No wait_idle(): the destructor must run every queued task before
    // joining (workers only exit once the queue is empty).
  }
  EXPECT_EQ(ran.load(), 256);
}

TEST(ThreadPoolStress, ZeroWorkerPoolDegradesInline) {
  ThreadPool pool(0);
  std::int64_t sum = 0;  // plain int: everything runs on this thread
  for (int round = 0; round < 100; ++round) {
    pool.submit([&sum] { ++sum; });
    parallel_for(pool, 0, 10, [&sum](std::int64_t) { ++sum; });
    pool.wait_idle();
  }
  EXPECT_EQ(sum, 100 * 11);
  EXPECT_THROW(parallel_for(pool, 0, 4,
                            [](std::int64_t) {
                              throw std::logic_error("inline boom");
                            }),
               std::logic_error);
}

TEST(ThreadPoolStress, ChunkedBodySeesDisjointRanges) {
  ThreadPool pool(4);
  std::vector<std::uint8_t> touched(2048, 0);
  for (int round = 0; round < 50; ++round) {
    std::fill(touched.begin(), touched.end(), 0);
    parallel_for_chunked(pool, 0, 2048,
                         [&touched](std::int64_t lo, std::int64_t hi) {
                           for (std::int64_t i = lo; i < hi; ++i)
                             ++touched[static_cast<std::size_t>(i)];
                         });
    for (std::uint8_t t : touched) ASSERT_EQ(t, 1);
  }
}

}  // namespace
