#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/architecture.hpp"
#include "facegen/dataset.hpp"
#include "facegen/renderer.hpp"
#include "nn/optimizer.hpp"
#include "nn/softmax_xent.hpp"
#include "test_helpers.hpp"
#include "xnor/bitstream.hpp"

namespace {

using namespace bcop;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

xnor::XnorNetwork trained_ish_network(std::uint64_t seed) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, seed);
  util::Rng rng(seed + 1);
  nn::Adam opt(model, 1e-2f);
  nn::SoftmaxCrossEntropy head;
  for (int i = 0; i < 4; ++i) {
    const auto x =
        bcop::testhelpers::random_tensor(tensor::Shape{3, 32, 32, 3}, rng);
    head.forward(model.forward(x, true), {0, 1, 2});
    model.backward(head.backward());
    opt.step();
  }
  return xnor::XnorNetwork::fold(model);
}

TEST(Bitstream, RoundTripPreservesLogitsExactly) {
  const xnor::XnorNetwork net = trained_ish_network(1);
  const std::string path = temp_path("bcop_test.bcbs");
  xnor::save_bitstream(net, path);
  const xnor::XnorNetwork loaded = xnor::load_bitstream(path);

  EXPECT_EQ(loaded.name(), net.name());
  ASSERT_EQ(loaded.stages().size(), net.stages().size());
  for (std::size_t i = 0; i < net.stages().size(); ++i)
    EXPECT_EQ(xnor::stage_kind(loaded.stages()[i]),
              xnor::stage_kind(net.stages()[i]));

  util::Rng rng(2);
  for (int trial = 0; trial < 4; ++trial) {
    const auto attrs = facegen::sample_attributes(
        static_cast<facegen::MaskClass>(trial), rng);
    const auto x = facegen::MaskedFaceDataset::image_to_tensor(
        facegen::render_face(attrs).image);
    const auto a = net.forward(x);
    const auto b = loaded.forward(x);
    for (std::int64_t j = 0; j < a.numel(); ++j)
      ASSERT_FLOAT_EQ(a[j], b[j]);
  }
  std::remove(path.c_str());
}

// v2 bitstreams carry the ReBNet residual descriptors (levels, dyadic
// scale bits, pattern threshold banks); a reloaded M = 3 network must
// serve identical logits at the full depth AND at every truncated cap.
TEST(Bitstream, ResidualRoundTripPreservesLogitsAtEveryLevelCap) {
  nn::Sequential model =
      core::build_bnn(core::ArchitectureId::kMicroCnv, 6, /*residual_levels=*/3);
  util::Rng rng(7);
  nn::Adam opt(model, 1e-2f);
  nn::SoftmaxCrossEntropy head;
  for (int i = 0; i < 4; ++i) {
    const auto xt =
        bcop::testhelpers::random_tensor(tensor::Shape{3, 32, 32, 3}, rng);
    head.forward(model.forward(xt, true), {0, 1, 2});
    model.backward(head.backward());
    opt.step();
  }
  const xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
  ASSERT_EQ(net.max_levels(), 3);

  const std::string path = temp_path("bcop_residual.bcbs");
  xnor::save_bitstream(net, path);
  const xnor::XnorNetwork loaded = xnor::load_bitstream(path);
  EXPECT_EQ(loaded.max_levels(), 3);
  EXPECT_EQ(loaded.weight_bits(), net.weight_bits());

  const auto x = bcop::testhelpers::random_tensor(
      tensor::Shape{2, 32, 32, 3}, rng);
  for (std::int64_t cap = 0; cap <= 3; ++cap) {
    const auto a = net.forward_batch(x, cap);
    const auto b = loaded.forward_batch(x, cap);
    ASSERT_EQ(a.shape(), b.shape());
    for (std::int64_t j = 0; j < a.numel(); ++j)
      ASSERT_FLOAT_EQ(a[j], b[j]) << "cap " << cap << " logit " << j;
  }
  std::remove(path.c_str());
}

TEST(Bitstream, WeightBitsSurviveRoundTrip) {
  const xnor::XnorNetwork net = trained_ish_network(3);
  const std::string path = temp_path("bcop_bits.bcbs");
  xnor::save_bitstream(net, path);
  const xnor::XnorNetwork loaded = xnor::load_bitstream(path);
  EXPECT_EQ(loaded.weight_bits(), net.weight_bits());
}

TEST(Bitstream, ArtifactIsCompact) {
  const xnor::XnorNetwork net = trained_ish_network(4);
  const std::string path = temp_path("bcop_size.bcbs");
  xnor::save_bitstream(net, path);
  const auto bytes = std::filesystem::file_size(path);
  // Packed weights + 64-bit thresholds; must be well under the float model.
  EXPECT_LT(bytes, static_cast<std::uintmax_t>(net.weight_bits() / 8 * 6));
  EXPECT_GT(bytes, static_cast<std::uintmax_t>(net.weight_bits() / 8));
  std::remove(path.c_str());
}

TEST(Bitstream, CorruptMagicRejected) {
  const std::string path = temp_path("bcop_corrupt.bcbs");
  {
    std::ofstream out(path, std::ios::binary);
    out << "JUNKJUNKJUNKJUNK";
  }
  EXPECT_THROW(xnor::load_bitstream(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Bitstream, TruncationRejected) {
  const xnor::XnorNetwork net = trained_ish_network(5);
  const std::string path = temp_path("bcop_trunc.bcbs");
  xnor::save_bitstream(net, path);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 3);
  EXPECT_THROW(xnor::load_bitstream(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Bitstream, EmptyNetworkRejected) {
  EXPECT_THROW(xnor::XnorNetwork("empty", {}), std::invalid_argument);
}

}  // namespace
