// Protocol battery for the HTTP/1.1 serving front-end (src/net): loopback
// round-trips against a live HttpServer, keep-alive reuse, pipelining,
// byte-dribbled requests, and the reject paths (400/404/405/413/431/503)
// -- each reject case also asserting the engine was never invoked, because
// admission control that forwards garbage is not admission control.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/architecture.hpp"
#include "core/predictor.hpp"
#include "net/client.hpp"
#include "net/http_server.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "serve/router.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcop;
using tensor::Shape;
using tensor::Tensor;

constexpr std::size_t kU8Bytes = 32 * 32 * 3;
constexpr std::size_t kF32Bytes = kU8Bytes * sizeof(float);

/// Predictor + replica fleet + HTTP front-end on an ephemeral loopback
/// port, plus the counters the engine-untouched assertions read.
struct LiveServer {
  core::Predictor predictor;
  serve::Router router;
  net::HttpServer http;

  explicit LiveServer(std::uint64_t seed, std::int64_t shed_watermark = 48,
                      int replicas = 1)
      : predictor(core::build_bnn(core::ArchitectureId::kMicroCnv, seed)),
        router(predictor, router_config(replicas)),
        http(router, http_config(shed_watermark)) {}

  static serve::RouterConfig router_config(int replicas) {
    serve::RouterConfig cfg;
    cfg.replicas = replicas;
    cfg.batcher.workers = 1;
    cfg.batcher.max_latency = std::chrono::microseconds(500);
    return cfg;
  }
  static net::HttpServerConfig http_config(std::int64_t watermark) {
    net::HttpServerConfig cfg;
    cfg.workers = 1;
    cfg.shed_watermark = watermark;
    return cfg;
  }

  net::BlockingClient client() {
    net::BlockingClient c;
    EXPECT_TRUE(c.connect("127.0.0.1", http.port()));
    return c;
  }

  /// Engine-side accepted work, for "the reject path never reached the
  /// engine" assertions.
  std::uint64_t engine_submissions() const {
    return obs::Registry::global()
        .counter("bcop_serve_submitted_total")
        .value();
  }
};

std::string u8_payload(std::uint64_t seed) {
  util::Rng rng(seed);
  std::string payload(kU8Bytes, '\0');
  for (auto& b : payload)
    b = static_cast<char>(rng.uniform_int(0, 255));
  return payload;
}

/// The tensor the server should build from a u8 payload (the
/// quantize_pixel 8-bit grid mapping documented in net/http_server.hpp).
Tensor u8_to_tensor(const std::string& payload) {
  Tensor t(Shape{32, 32, 3});
  for (std::size_t i = 0; i < payload.size(); ++i)
    t[static_cast<std::int64_t>(i)] =
        static_cast<float>(2 * static_cast<unsigned char>(payload[i]) - 255) /
        255.f;
  return t;
}

TEST(NetSocket, FdIsMoveOnlyRaii) {
  net::Fd empty;
  EXPECT_FALSE(empty.valid());
  std::uint16_t port = 0;
  net::Fd listener = net::listen_tcp(0, 4, port);
  ASSERT_TRUE(listener.valid());
  EXPECT_GT(port, 0) << "ephemeral bind must report the chosen port";
  const int raw = listener.get();
  net::Fd moved = std::move(listener);
  EXPECT_FALSE(listener.valid());
  EXPECT_EQ(moved.get(), raw);
  moved.reset();
  EXPECT_FALSE(moved.valid());
  moved.reset();  // idempotent
}

TEST(NetSocket, ConnectReachesListener) {
  std::uint16_t port = 0;
  net::Fd listener = net::listen_tcp(0, 4, port);
  ASSERT_TRUE(listener.valid());
  net::Fd client = net::connect_tcp("127.0.0.1", port);
  EXPECT_TRUE(client.valid());
  EXPECT_TRUE(net::set_nodelay(client.get()));
  EXPECT_TRUE(net::set_io_timeout(client.get(), 100));
  EXPECT_TRUE(net::set_nonblocking(client.get(), true));
  EXPECT_TRUE(net::set_nonblocking(client.get(), false));
}

TEST(NetHttp, ClassifyU8RoundTripMatchesDirectClassification) {
  LiveServer s(100);
  const std::string payload = u8_payload(101);
  const auto direct =
      s.predictor.classify_batch(u8_to_tensor(payload).reshaped(
          Shape{1, 32, 32, 3}));
  ASSERT_EQ(direct.size(), 1u);

  auto c = s.client();
  net::HttpResponse resp;
  ASSERT_TRUE(c.request("POST", "/v1/classify", payload, resp));
  EXPECT_EQ(resp.status, 200);
  const std::string expect_class =
      "\"class\":" + std::to_string(static_cast<int>(direct[0].label));
  EXPECT_NE(resp.body.find(expect_class), std::string::npos) << resp.body;
  EXPECT_NE(resp.body.find("\"confidence\":"), std::string::npos);
  EXPECT_NE(resp.body.find("\"scores\":["), std::string::npos);
}

TEST(NetHttp, ClassifyF32PayloadAgreesWithU8) {
  LiveServer s(102);
  const std::string payload = u8_payload(103);
  const Tensor t = u8_to_tensor(payload);
  std::string f32(kF32Bytes, '\0');
  std::memcpy(f32.data(), t.data(), kF32Bytes);

  auto c = s.client();
  net::HttpResponse a, b;
  ASSERT_TRUE(c.request("POST", "/v1/classify", payload, a));
  ASSERT_TRUE(c.request("POST", "/v1/classify", f32, b));
  EXPECT_EQ(a.status, 200);
  EXPECT_EQ(b.status, 200);
  EXPECT_EQ(a.body, b.body) << "u8 and f32 encodings of the same image "
                               "must classify identically";
}

TEST(NetHttp, KeepAliveServesManyRequestsOnOneConnection) {
  LiveServer s(104);
  obs::Counter& accepted =
      obs::Registry::global().counter("bcop_net_accepted_total");
  const std::uint64_t before = accepted.value();
  auto c = s.client();
  const std::string payload = u8_payload(105);
  for (int i = 0; i < 4; ++i) {
    net::HttpResponse resp;
    ASSERT_TRUE(c.request("POST", "/v1/classify", payload, resp)) << i;
    EXPECT_EQ(resp.status, 200) << i;
    EXPECT_TRUE(resp.keep_alive) << i;
  }
  net::HttpResponse health;
  ASSERT_TRUE(c.request("GET", "/healthz", "", health));
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(accepted.value() - before, 1u)
      << "five requests must reuse a single accepted connection";
}

TEST(NetHttp, PipelinedRequestsAnswerInOrder) {
  LiveServer s(106);
  auto c = s.client();
  std::string wire;
  wire += net::format_request("GET", "/healthz", "");
  wire += net::format_request("GET", "/metrics", "");
  wire += net::format_request("GET", "/healthz", "");
  ASSERT_TRUE(c.send_raw(wire));
  net::HttpResponse r1, r2, r3;
  ASSERT_TRUE(c.read_response(r1));
  ASSERT_TRUE(c.read_response(r2));
  ASSERT_TRUE(c.read_response(r3));
  EXPECT_EQ(r1.status, 200);
  EXPECT_EQ(r2.status, 200);
  EXPECT_EQ(r3.status, 200);
  EXPECT_NE(r1.body.find("\"queue_depth\":"), std::string::npos);
  EXPECT_NE(r2.body.find("bcop_serve_submitted_total"), std::string::npos)
      << "/metrics must be the middle response (ordering preserved)";
  EXPECT_NE(r3.body.find("\"queue_depth\":"), std::string::npos);
}

TEST(NetHttp, ByteDribbledRequestStillParses) {
  LiveServer s(107);
  auto c = s.client();
  const std::string wire = net::format_request("GET", "/healthz", "");
  for (const char ch : wire)
    ASSERT_TRUE(c.send_raw(std::string_view(&ch, 1)));
  net::HttpResponse resp;
  ASSERT_TRUE(c.read_response(resp));
  EXPECT_EQ(resp.status, 200);
}

TEST(NetHttp, OversizedBodyIs413WithoutTouchingTheEngine) {
  LiveServer s(108);
  const std::uint64_t before = s.engine_submissions();
  auto c = s.client();
  // Content-Length alone triggers the reject; no body bytes ever sent.
  std::string head = "POST /v1/classify HTTP/1.1\r\nHost: x\r\n";
  head += "Content-Length: " + std::to_string(kF32Bytes + 1) + "\r\n\r\n";
  ASSERT_TRUE(c.send_raw(head));
  net::HttpResponse resp;
  ASSERT_TRUE(c.read_response(resp));
  EXPECT_EQ(resp.status, 413);
  EXPECT_FALSE(resp.keep_alive);
  EXPECT_EQ(s.engine_submissions(), before);
}

TEST(NetHttp, WrongSizeBodyIs400WithoutTouchingTheEngine) {
  LiveServer s(109);
  const std::uint64_t before = s.engine_submissions();
  auto c = s.client();
  net::HttpResponse resp;
  ASSERT_TRUE(c.request("POST", "/v1/classify", "ten bytes.", resp));
  EXPECT_EQ(resp.status, 400);
  EXPECT_EQ(s.engine_submissions(), before);
}

TEST(NetHttp, MalformedRequestLineIs400AndCloses) {
  LiveServer s(110);
  const std::uint64_t before = s.engine_submissions();
  auto c = s.client();
  ASSERT_TRUE(c.send_raw("THIS IS NOT HTTP AT ALL\r\n\r\n"));
  net::HttpResponse resp;
  ASSERT_TRUE(c.read_response(resp));
  EXPECT_EQ(resp.status, 400);
  EXPECT_FALSE(resp.keep_alive);
  EXPECT_FALSE(c.connected()) << "400 must close the connection";
  EXPECT_EQ(s.engine_submissions(), before);
}

TEST(NetHttp, MalformedHeaderIs400) {
  LiveServer s(111);
  const std::uint64_t before = s.engine_submissions();
  auto c = s.client();
  ASSERT_TRUE(
      c.send_raw("GET /healthz HTTP/1.1\r\nBad Header: has space\r\n\r\n"));
  net::HttpResponse resp;
  ASSERT_TRUE(c.read_response(resp));
  EXPECT_EQ(resp.status, 400);
  EXPECT_EQ(s.engine_submissions(), before);
}

TEST(NetHttp, OversizedHeaderSectionIs431) {
  LiveServer s(112);
  auto c = s.client();
  std::string wire = "GET /healthz HTTP/1.1\r\nX-Filler: ";
  wire.append(9000, 'a');
  wire += "\r\n\r\n";
  ASSERT_TRUE(c.send_raw(wire));
  net::HttpResponse resp;
  ASSERT_TRUE(c.read_response(resp));
  EXPECT_EQ(resp.status, 431);
}

TEST(NetHttp, UnknownTargetIs404AndWrongMethodIs405) {
  LiveServer s(113);
  const std::uint64_t before = s.engine_submissions();
  auto c = s.client();
  net::HttpResponse resp;
  ASSERT_TRUE(c.request("GET", "/v1/nope", "", resp));
  EXPECT_EQ(resp.status, 404);
  ASSERT_TRUE(c.request("GET", "/v1/classify", "", resp));
  EXPECT_EQ(resp.status, 405);
  EXPECT_EQ(s.engine_submissions(), before);
}

TEST(NetHttp, TransferEncodingIs501) {
  LiveServer s(114);
  auto c = s.client();
  ASSERT_TRUE(c.send_raw(
      "POST /v1/classify HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"));
  net::HttpResponse resp;
  ASSERT_TRUE(c.read_response(resp));
  EXPECT_EQ(resp.status, 501);
}

TEST(NetHttp, ExpectContinueFlowCompletes) {
  LiveServer s(115);
  auto c = s.client();
  const std::string payload = u8_payload(116);
  // Headers first (as curl does for large bodies), body after: the server
  // must emit the interim 100 and then answer the classification.
  std::string head = "POST /v1/classify HTTP/1.1\r\nHost: x\r\n";
  head += "Expect: 100-continue\r\n";
  head += "Content-Length: " + std::to_string(payload.size()) + "\r\n\r\n";
  ASSERT_TRUE(c.send_raw(head));
  ASSERT_TRUE(c.send_raw(payload));
  net::HttpResponse resp;
  ASSERT_TRUE(c.read_response(resp));  // interim 100 is skipped internally
  EXPECT_EQ(resp.status, 200);
}

TEST(NetHttp, WatermarkZeroShedsWith503AndRetryAfter) {
  LiveServer s(117, /*shed_watermark=*/0);
  obs::Counter& rejected =
      obs::Registry::global().counter("bcop_serve_rejected_total");
  const std::uint64_t engine_before = s.engine_submissions();
  const std::uint64_t rejected_before = rejected.value();
  auto c = s.client();
  const std::string payload = u8_payload(118);
  for (int i = 0; i < 3; ++i) {
    net::HttpResponse resp;
    ASSERT_TRUE(c.request("POST", "/v1/classify", payload, resp)) << i;
    EXPECT_EQ(resp.status, 503) << i;
    EXPECT_TRUE(resp.keep_alive) << "shedding must not kill the connection";
  }
  EXPECT_EQ(s.engine_submissions(), engine_before);
  EXPECT_EQ(rejected.value() - rejected_before, 3u)
      << "every 503 must land in bcop_serve_rejected_total";

  net::HttpResponse health;
  ASSERT_TRUE(c.request("GET", "/healthz", "", health));
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"shedding\""), std::string::npos)
      << health.body;
}

TEST(NetHttp, HealthzReportsPerReplicaStates) {
  LiveServer s(120, /*shed_watermark=*/48, /*replicas=*/2);
  auto c = s.client();
  net::HttpResponse health;
  ASSERT_TRUE(c.request("GET", "/healthz", "", health));
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"replicas\":["), std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("\"id\":0,\"state\":\"serving\""),
            std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("\"id\":1,\"state\":\"serving\""),
            std::string::npos)
      << health.body;

  // Drain one replica: /healthz must show it stopped while the fleet
  // stays "ok" and classification still works through the survivor.
  s.router.drain(1);
  ASSERT_TRUE(c.request("GET", "/healthz", "", health));
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"id\":1,\"state\":\"stopped\""),
            std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos)
      << "one serving replica under the watermark must keep the fleet ok";
  net::HttpResponse resp;
  ASSERT_TRUE(c.request("POST", "/v1/classify", u8_payload(121), resp));
  EXPECT_EQ(resp.status, 200)
      << "a drained replica must not take requests down with it";
}

TEST(NetHttp, HotSwapUnderTrafficNeverDropsService) {
  LiveServer s(122, /*shed_watermark=*/48, /*replicas=*/2);
  auto c = s.client();
  const std::string payload = u8_payload(123);
  net::HttpResponse resp;
  ASSERT_TRUE(c.request("POST", "/v1/classify", payload, resp));
  EXPECT_EQ(resp.status, 200);

  // Swap each replica in turn (rolling deploy); every request in between
  // must still be answered 200 by whichever replica is serving.
  for (int i = 0; i < s.router.size(); ++i) {
    s.router.swap_model(i, s.predictor);
    for (int j = 0; j < 2; ++j) {
      ASSERT_TRUE(c.request("POST", "/v1/classify", payload, resp));
      EXPECT_EQ(resp.status, 200) << "swap of replica " << i;
    }
  }
  EXPECT_GE(s.router.replica(0).generation(), 2);
  EXPECT_GE(s.router.replica(1).generation(), 2);
}

TEST(NetHttp, MetricsEndpointExportsServeAndNetFamilies) {
  LiveServer s(119);
  auto c = s.client();
  net::HttpResponse resp;
  ASSERT_TRUE(c.request("GET", "/metrics", "", resp));
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("bcop_serve_submitted_total"), std::string::npos);
  EXPECT_NE(resp.body.find("bcop_net_requests_total"), std::string::npos);
  EXPECT_NE(resp.body.find("bcop_net_open_connections"), std::string::npos);
}

}  // namespace
