// MVTU fold-loop simulation: arithmetic must match the packed reference
// kernels for every PE/SIMD dimensioning, and cycle accounting must follow
// the folding formula.
#include <gtest/gtest.h>

#include <tuple>

#include "deploy/mvtu.hpp"
#include "deploy/swu.hpp"
#include "tensor/bit_tensor.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcop;
using deploy::BinaryMvtu;
using deploy::FixedMvtu;
using deploy::folds_per_vector;
using deploy::MvtuConfig;
using tensor::BitMatrix;

std::vector<float> random_signs(std::int64_t n, util::Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.bernoulli(0.5) ? 1.f : -1.f;
  return v;
}

xnor::ThresholdSpec mid_thresholds(std::int64_t rows, util::Rng& rng,
                                   std::int64_t span) {
  xnor::ThresholdSpec spec;
  spec.t.resize(static_cast<std::size_t>(rows));
  spec.flip.resize(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    spec.t[static_cast<std::size_t>(r)] = rng.uniform_int(-span, span);
    spec.flip[static_cast<std::size_t>(r)] =
        static_cast<std::uint8_t>(rng.bernoulli(0.3));
  }
  return spec;
}

TEST(FoldsPerVector, Formula) {
  EXPECT_EQ(folds_per_vector(64, 576, {16, 32}), 4 * 18);
  EXPECT_EQ(folds_per_vector(64, 576, {64, 576}), 1);
  EXPECT_EQ(folds_per_vector(5, 7, {2, 3}), 3 * 3);  // ceil division
  EXPECT_THROW(folds_per_vector(4, 4, {0, 1}), std::invalid_argument);
}

class MvtuDims
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(MvtuDims, BinaryMvtuMatchesXnorDotAndThresholds) {
  const auto [rows, cols, pe, simd] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(rows * 131 + cols + pe * 7 + simd));
  const auto wsrc = random_signs(static_cast<std::int64_t>(rows) * cols, rng);
  const BitMatrix weights = tensor::pack_matrix(wsrc.data(), rows, cols);
  const auto thresholds = mid_thresholds(rows, rng, cols);
  const BinaryMvtu mvtu(&weights, &thresholds, MvtuConfig{pe, simd});

  const auto in = random_signs(cols, rng);
  const BitMatrix packed_in = tensor::pack_matrix(in.data(), 1, cols);

  std::vector<std::uint8_t> out_bits;
  std::vector<std::int32_t> acc;
  const std::int64_t cycles = mvtu.process(packed_in.row(0), &out_bits, &acc);

  EXPECT_EQ(cycles, folds_per_vector(rows, cols, {pe, simd}));
  ASSERT_EQ(acc.size(), static_cast<std::size_t>(rows));
  ASSERT_EQ(out_bits.size(), static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t expected = tensor::xnor_dot(
        packed_in.row(0), weights.row(r), cols, weights.words_per_row());
    EXPECT_EQ(acc[static_cast<std::size_t>(r)], expected) << "row " << r;
    EXPECT_EQ(out_bits[static_cast<std::size_t>(r)] == 1,
              thresholds.fire(expected, r))
        << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dimensionings, MvtuDims,
    ::testing::Values(std::make_tuple(16, 144, 16, 16),  // n-CNV conv1.2
                      std::make_tuple(64, 576, 4, 32),
                      std::make_tuple(4, 128, 1, 1),     // FC.3
                      std::make_tuple(7, 65, 3, 9),      // ragged folds
                      std::make_tuple(1, 1, 1, 1),
                      std::make_tuple(128, 64, 1, 4)));

TEST(BinaryMvtu, RowOrderIsPreservedAcrossNeuronFolds) {
  // With PE=2 and 4 rows, outputs must appear in row order 0,1,2,3.
  util::Rng rng(77);
  const auto wsrc = random_signs(4 * 8, rng);
  const BitMatrix weights = tensor::pack_matrix(wsrc.data(), 4, 8);
  // Thresholds that always fire for even rows, never for odd rows.
  xnor::ThresholdSpec spec;
  spec.t = {INT64_MIN + 1, INT64_MAX, INT64_MIN + 1, INT64_MAX};
  spec.flip = {0, 0, 0, 0};
  const BinaryMvtu mvtu(&weights, &spec, MvtuConfig{2, 4});
  const auto in = random_signs(8, rng);
  const BitMatrix packed = tensor::pack_matrix(in.data(), 1, 8);
  std::vector<std::uint8_t> bits;
  mvtu.process(packed.row(0), &bits, nullptr);
  EXPECT_EQ(bits, (std::vector<std::uint8_t>{1, 0, 1, 0}));
}

TEST(BinaryMvtu, NullWeightsThrow) {
  EXPECT_THROW(BinaryMvtu(nullptr, nullptr, MvtuConfig{1, 1}),
               std::invalid_argument);
}

TEST(BinaryMvtu, ThresholdArityMismatchThrows) {
  const BitMatrix weights(4, 8);
  xnor::ThresholdSpec spec;
  spec.t = {0};
  spec.flip = {0};
  EXPECT_THROW(BinaryMvtu(&weights, &spec, MvtuConfig{1, 1}),
               std::invalid_argument);
}

TEST(FixedMvtu, MatchesSignedAccumulation) {
  util::Rng rng(5);
  const std::int64_t rows = 16, cols = 27;
  tensor::Tensor w(tensor::Shape{cols, rows});
  for (std::int64_t i = 0; i < w.numel(); ++i)
    w[i] = rng.bernoulli(0.5) ? 1.f : -1.f;
  std::vector<std::int32_t> in(static_cast<std::size_t>(cols));
  for (auto& v : in)
    v = static_cast<std::int32_t>(rng.uniform_int(-255, 255));

  const FixedMvtu mvtu(&w, nullptr, MvtuConfig{4, 3});
  std::vector<std::int32_t> acc;
  const std::int64_t cycles = mvtu.process(in.data(), nullptr, &acc);
  EXPECT_EQ(cycles, folds_per_vector(rows, cols, {4, 3}));
  ASSERT_EQ(acc.size(), static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int64_t expected = 0;
    for (std::int64_t c = 0; c < cols; ++c)
      expected += w.at2(c, r) >= 0.f ? in[static_cast<std::size_t>(c)]
                                     : -in[static_cast<std::size_t>(c)];
    EXPECT_EQ(acc[static_cast<std::size_t>(r)], expected);
  }
}

TEST(Swu, PatchOrderMatchesIm2Row) {
  // 4x4x2 map, k=3: patch (ky,kx,c) order.
  const std::int64_t h = 4, w = 4, c = 2, k = 3;
  std::vector<std::uint8_t> fmap(static_cast<std::size_t>(h * w * c));
  util::Rng rng(6);
  for (auto& b : fmap) b = static_cast<std::uint8_t>(rng.bernoulli(0.5));

  deploy::SlidingWindowUnit swu(h, w, c, k);
  EXPECT_EQ(swu.out_h(), 2);
  EXPECT_EQ(swu.patch_bits(), 18);
  EXPECT_EQ(swu.stream_cycles(), 16);

  std::vector<std::uint64_t> words(static_cast<std::size_t>(swu.patch_words()));
  swu.window_bits(fmap, 1, 1, words.data());
  std::int64_t bit = 0;
  for (std::int64_t ky = 0; ky < k; ++ky)
    for (std::int64_t kx = 0; kx < k; ++kx)
      for (std::int64_t ch = 0; ch < c; ++ch, ++bit) {
        const bool expected =
            fmap[static_cast<std::size_t>(((1 + ky) * w + 1 + kx) * c + ch)] != 0;
        EXPECT_EQ(((words[static_cast<std::size_t>(bit >> 6)] >> (bit & 63)) & 1) == 1,
                  expected)
            << "bit " << bit;
      }
}

TEST(Swu, BadGeometryThrows) {
  EXPECT_THROW(deploy::SlidingWindowUnit(2, 2, 1, 3), std::invalid_argument);
  deploy::SlidingWindowUnit swu(4, 4, 1, 3);
  std::vector<std::uint8_t> wrong(7);
  std::uint64_t out;
  EXPECT_THROW(swu.window_bits(wrong, 0, 0, &out), std::invalid_argument);
}

}  // namespace
