// SLO capacity sweep: how many req/s can each fleet shape sustain?
//
// The paper's FPGA numbers answer "how fast is one engine"; a deployment
// needs "how many cameras can this box serve at an acceptable tail". This
// bench answers it empirically: for every (replicas x workers) fleet
// shape in the sweep, it boots the full serving stack in-process
// (predictor -> serve::Router -> net::HttpServer) and probes increasing
// open-loop rates (net/loadgen.hpp, coordinated-omission safe) until the
// SLO breaks. A probe PASSES when
//
//   - accounting conserves with nothing lost, timed out or errored,
//   - the shed fraction stays under --max-shed (default 1%), and
//   - p99 latency (from *scheduled* arrival) <= --slo-ms (default 50 ms).
//
// The capacity of a shape is the highest passing offered rate; the search
// ramps geometrically (--rate-step, default 2x) from --rate-start and
// stops at the first failing probe or after --max-probes. Each shape gets
// a fresh Router so plan caches and queues never leak across configs.
//
// The JSON artifact (--out, default artifacts/capacity.json) records the
// sweep methodology (SLO, probe schedule), per-shape probe trails, the
// winning capacity per shape, and provenance (kernel tier, git SHA, CPU
// budget) so capacity numbers are comparable across commits and hosts --
// docs/benchmarks.md describes how to read it.
//
// Knobs: --slo-ms F --max-shed F --replicas-list a,b,.. --workers-list
// a,b,.. --rate-start R --rate-step F --max-probes N --duration-ms N
// --connections N --watermark N --http-workers N --seed S --pin
// --out PATH --smoke (one 1x1 shape, 300 ms probes, for CI wiring).
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/architecture.hpp"
#include "core/predictor.hpp"
#include "net/http_server.hpp"
#include "net/loadgen.hpp"
#include "parallel/affinity.hpp"
#include "serve/router.hpp"
#include "tensor/kernels/dispatch.hpp"
#include "util/args.hpp"

using namespace bcop;

#ifndef BCOP_GIT_SHA
#define BCOP_GIT_SHA "unknown"
#endif

namespace {

std::vector<int> parse_int_list(const std::string& csv) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) out.push_back(std::stoi(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

struct Probe {
  double rate = 0;
  net::LoadGenReport report;
  bool pass = false;
};

struct ShapeResult {
  int replicas = 0;
  unsigned workers = 0;
  double capacity_rps = 0;  // highest passing offered rate (0 = none passed)
  double capacity_p99_ms = 0;
  std::vector<Probe> probes;
};

bool probe_passes(const net::LoadGenReport& r, double slo_ms,
                  double max_shed) {
  return r.conserved() && r.lost == 0 && r.timed_out == 0 && r.err_4xx == 0 &&
         r.err_5xx == 0 && r.shed_fraction <= max_shed && r.p99_ms <= slo_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv, {"smoke", "pin"});
  const bool smoke = args.get_flag("smoke");
  const double slo_ms = args.get_double("slo-ms", 50.0);
  const double max_shed = args.get_double("max-shed", 0.01);
  const double rate_start = args.get_double("rate-start", smoke ? 200.0
                                                                : 1000.0);
  const double rate_step = args.get_double("rate-step", 2.0);
  const int max_probes = args.get_int("max-probes", smoke ? 2 : 6);
  const int duration_ms = args.get_int("duration-ms", smoke ? 300 : 2000);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::vector<int> replica_counts =
      parse_int_list(args.get("replicas-list", smoke ? "1" : "1,2,4"));
  const std::vector<int> worker_counts =
      parse_int_list(args.get("workers-list", smoke ? "1" : "1,2"));

  // Untrained weights: XNOR-popcount latency is weight-independent, so
  // capacity numbers are representative without a training phase.
  const core::Predictor predictor(
      core::build_bnn(core::ArchitectureId::kMicroCnv, seed));

  std::vector<ShapeResult> results;
  for (const int replicas : replica_counts) {
    for (const int workers : worker_counts) {
      ShapeResult shape;
      shape.replicas = replicas;
      shape.workers = static_cast<unsigned>(workers);
      // Fresh fleet per shape: plan caches, queues and counters' deltas
      // never bleed between sweep points.
      serve::RouterConfig rcfg;
      rcfg.replicas = replicas;
      rcfg.batcher.workers = shape.workers;
      rcfg.pin_workers = args.get_flag("pin");
      serve::Router router(predictor, rcfg);
      net::HttpServerConfig hcfg;
      hcfg.workers = static_cast<unsigned>(args.get_int("http-workers", 2));
      hcfg.shed_watermark = args.get_int("watermark", 48);
      net::HttpServer http(router, hcfg);

      double rate = rate_start;
      for (int p = 0; p < max_probes; ++p) {
        net::LoadGenConfig cfg;
        cfg.port = http.port();
        cfg.rate = rate;
        cfg.duration = std::chrono::milliseconds(duration_ms);
        cfg.connections =
            static_cast<unsigned>(args.get_int("connections", 8));
        cfg.seed = seed + static_cast<std::uint64_t>(p);
        std::printf("[%dx%u] probing %.0f req/s ...\n", replicas,
                    shape.workers, rate);
        Probe probe;
        probe.rate = rate;
        probe.report = net::run_loadgen(cfg);
        probe.pass = probe_passes(probe.report, slo_ms, max_shed);
        std::printf("[%dx%u] %s p99=%.2fms shed=%.3f -> %s\n", replicas,
                    shape.workers, probe.pass ? "PASS" : "FAIL",
                    probe.report.p99_ms, probe.report.shed_fraction,
                    probe.pass ? "ramp" : "stop");
        if (probe.pass) {
          shape.capacity_rps = rate;
          shape.capacity_p99_ms = probe.report.p99_ms;
        }
        shape.probes.push_back(std::move(probe));
        if (!shape.probes.back().pass) break;  // SLO broke: capacity found
        rate *= rate_step;
      }
      results.push_back(std::move(shape));
    }
  }

  const std::string out = args.get("out", "bench_artifacts/capacity.json");
  std::filesystem::create_directories(
      std::filesystem::path(out).parent_path());
  FILE* f = std::fopen(out.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"slo_p99_ms\": %.1f,\n  \"max_shed_fraction\": %.4f,\n"
               "  \"rate_start\": %.1f,\n  \"rate_step\": %.2f,\n"
               "  \"probe_duration_ms\": %d,\n"
               "  \"kernel_level\": \"%s\",\n  \"git_sha\": \"%s\",\n"
               "  \"available_cpus\": %d,\n  \"shapes\": [",
               slo_ms, max_shed, rate_start, rate_step, duration_ms,
               tensor::kernels::kernel_level_name(
                   tensor::kernels::active_level()),
               BCOP_GIT_SHA, parallel::available_cpus());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ShapeResult& s = results[i];
    std::fprintf(f,
                 "%s\n    {\"replicas\": %d, \"workers\": %u, "
                 "\"capacity_rps\": %.1f, \"capacity_p99_ms\": %.2f, "
                 "\"probes\": [",
                 i ? "," : "", s.replicas, s.workers, s.capacity_rps,
                 s.capacity_p99_ms);
    for (std::size_t p = 0; p < s.probes.size(); ++p)
      std::fprintf(f, "%s\n      {\"rate\": %.1f, \"pass\": %s, "
                      "\"report\": %s}",
                   p ? "," : "", s.probes[p].rate,
                   s.probes[p].pass ? "true" : "false",
                   s.probes[p].report.to_json().c_str());
    std::fprintf(f, "\n    ]}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("capacity report written to %s\n", out.c_str());

  // The sweep itself failing (no shape sustains even the starting rate
  // with clean accounting) is a regression signal for CI.
  for (const ShapeResult& s : results) {
    for (const Probe& p : s.probes) {
      if (!p.report.conserved() || p.report.lost || p.report.err_5xx) {
        std::fprintf(stderr, "FAIL: lost requests or broken conservation "
                             "in shape %dx%u -- see the artifact\n",
                     s.replicas, s.workers);
        return 1;
      }
    }
  }
  std::printf("OK: all probes accounted for every request\n");
  return 0;
}
