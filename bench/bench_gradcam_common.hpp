// Shared driver for the Grad-CAM figure reproductions (Figs. 3-9).
//
// Each figure is a panel of rows; every row is one subject shown as
// raw | BCoP-CNV | BCoP-n-CNV | FP32 heat-map overlays -- the same three
// model columns the paper uses. The driver renders the subjects, runs
// Grad-CAM on all three models, writes the panel as a PPM, and prints the
// quantitative attention report (saliency of each ground-truth landmark
// region) that replaces the paper's by-eye reading.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/architecture.hpp"
#include "facegen/renderer.hpp"
#include "gradcam/attention.hpp"
#include "gradcam/gradcam.hpp"
#include "gradcam/overlay.hpp"
#include "util/table.hpp"

namespace bcop::bench {

struct Scenario {
  std::string label;
  facegen::FaceAttributes attrs;
};

inline int run_gradcam_figure(const std::string& figure,
                              const std::string& description,
                              const std::vector<Scenario>& scenarios) {
  try {
    std::printf("%s: Grad-CAM results -- %s\n\n", figure.c_str(),
                description.c_str());
    const std::string out_dir = "bench_artifacts";
    std::filesystem::create_directories(out_dir);

    struct Column {
      std::string name;
      nn::Sequential model;
    };
    std::vector<Column> columns;
    columns.push_back({"BCoP-CNV", load_model(core::ArchitectureId::kCnv)});
    columns.push_back({"BCoP-n-CNV", load_model(core::ArchitectureId::kNCnv)});
    columns.push_back({"FP32", load_fp32_model()});

    for (const auto& sc : scenarios) {
      const auto rendered = facegen::render_face(sc.attrs);
      const auto input =
          facegen::MaskedFaceDataset::image_to_tensor(rendered.image);

      std::vector<util::Image> panel{rendered.image};
      util::AsciiTable t({"model", "predicted", "nose", "mouth", "chin",
                          "eyes", "mask", "dominant region"});
      for (auto& col : columns) {
        gradcam::GradCam cam(col.model, core::gradcam_layer_index(col.model));
        const auto result = cam.compute(input);
        panel.push_back(gradcam::overlay(rendered.image, result.upsampled));
        const auto rep = gradcam::score_attention(result.upsampled, 32, 32,
                                                  rendered.regions);
        t.add_row({col.name,
                   facegen::class_short_name(
                       static_cast<facegen::MaskClass>(result.predicted_class)),
                   util::fmt(rep.nose, 2), util::fmt(rep.mouth, 2),
                   util::fmt(rep.chin, 2), util::fmt(rep.eyes, 2),
                   util::fmt(rep.mask, 2), rep.dominant});
      }
      std::string stem = figure + "_" + sc.label;
      for (auto& ch : stem)
        if (ch == ' ' || ch == '/' || ch == '+') ch = '_';
      const std::string path = out_dir + "/" + stem + ".ppm";
      util::write_ppm(path, gradcam::hstack(panel));

      std::printf("row: %s (true class: %s) -> %s\n", sc.label.c_str(),
                  facegen::class_name(sc.attrs.mask_class), path.c_str());
      std::printf("%s\n", t.render().c_str());
    }
    std::printf("(panel columns: raw | BCoP-CNV | BCoP-n-CNV | FP32; "
                "saliency > 1 means the region is hotter than the image "
                "average)\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", figure.c_str(), e.what());
    return 1;
  }
}

/// A neutral adult subject wearing class `cls`, derived deterministically
/// from `seed`, with sane defaults that scenario builders then tweak.
inline facegen::FaceAttributes base_subject(facegen::MaskClass cls,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  facegen::FaceAttributes a = facegen::sample_attributes(cls, rng);
  a.sunglasses = a.face_paint = a.double_mask = a.headgear = false;
  a.age = facegen::AgeGroup::kAdult;
  return a;
}

}  // namespace bcop::bench
