// Reproduces Fig. 8: Grad-CAM hair/head-gear generalization. The paper's
// key case: hair or head-gear dyed in the same light blue as the surgical
// mask -- BCoP-CNV stays on the mask-relevant features while the FP32
// model's attention drifts to the hair/head-gear.
#include "bench_gradcam_common.hpp"

using namespace bcop;
using bench::base_subject;
using facegen::MaskClass;

int main() {
  auto dark = base_subject(MaskClass::kCorrect, 801);
  dark.hair = {0.12f, 0.09f, 0.07f};

  auto blue_hair = base_subject(MaskClass::kCorrect, 802);
  blue_hair.hair = {0.60f, 0.78f, 0.92f};  // mask-coloured hair
  blue_hair.hair_style = facegen::HairStyle::kLong;
  blue_hair.mask_color = {0.62f, 0.80f, 0.93f};

  auto blue_gear = base_subject(MaskClass::kCorrect, 803);
  blue_gear.headgear = true;
  blue_gear.headgear_color = {0.60f, 0.78f, 0.92f};  // mask-coloured cap
  blue_gear.mask_color = {0.62f, 0.80f, 0.93f};

  return bench::run_gradcam_figure(
      "FIG8", "hair/head-gear generalization (incl. mask-coloured hair)",
      {{"dark_hair", dark},
       {"mask_coloured_hair", blue_hair},
       {"mask_coloured_headgear", blue_gear}});
}
