// Reproduces Fig. 6: Grad-CAM for the chin-exposed class. The paper's
// reading: the mask's top edge looks like a correctly worn mask, so the
// BNNs attend to the neck and the exposed chin instead.
#include "bench_gradcam_common.hpp"

using namespace bcop;
using bench::base_subject;
using facegen::MaskClass;

int main() {
  auto a = base_subject(MaskClass::kChinExposed, 601);
  auto b = base_subject(MaskClass::kChinExposed, 602);
  b.age = facegen::AgeGroup::kElderly;
  auto c = base_subject(MaskClass::kChinExposed, 603);
  c.skin = {0.55f, 0.38f, 0.28f};

  return bench::run_gradcam_figure(
      "FIG6", "chin-exposed class",
      {{"subject_a", a}, {"elderly", b}, {"subject_c", c}});
}
