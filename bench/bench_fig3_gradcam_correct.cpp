// Reproduces Fig. 3: Grad-CAM for the correctly-masked class. The paper's
// reading: the BNNs focus on key facial lineaments above the mask (nose
// bridge, cheekbones) rather than the mask itself.
#include "bench_gradcam_common.hpp"

using namespace bcop;
using bench::base_subject;
using facegen::MaskClass;

int main() {
  auto child = base_subject(MaskClass::kCorrect, 301);
  child.age = facegen::AgeGroup::kInfant;
  auto adult = base_subject(MaskClass::kCorrect, 302);
  auto adult2 = base_subject(MaskClass::kCorrect, 303);
  adult2.skin = {0.45f, 0.30f, 0.22f};  // darker skin tone row

  return bench::run_gradcam_figure(
      "FIG3", "correctly-masked class",
      {{"child", child}, {"adult", adult}, {"adult_dark_skin", adult2}});
}
