// Open-loop load benchmark for the HTTP serving front-end.
//
// Boots the full serving stack in-process (BNN predictor -> serve::Router
// replica fleet -> net::HttpServer on an ephemeral loopback port), then
// drives it with the seeded open-loop generator (net/loadgen.hpp) in two
// phases:
//
//   baseline   the configured rate (default 6000 req/s)
//   overload   the same shape at --overload-factor x the rate (default 2x)
//              to demonstrate graceful shedding: 503s and a bounded p99,
//              never lost requests or crashes
//
// The JSON artifact (--out, default artifacts/loadgen.json) records both
// phases: offered vs achieved rate, p50/p90/p99 latency measured from the
// *scheduled* arrival (coordinated-omission safe), and the shed fraction
// -- plus the provenance needed to compare runs across machines and
// commits: the dispatched SIMD kernel tier, the replica count and the git
// SHA the binary was built from. Exit status is non-zero if either phase
// loses requests or breaks the sent == answered conservation identity, so
// CI can gate on it.
//
// Knobs: --rate R --duration-ms N --shape poisson|burst|diurnal
// --burst-factor F --connections N --seed S --replicas N --workers N
// (per replica) --pin --http-workers N --watermark N (per replica)
// --overload-factor F (0 skips the overload phase)
// --smoke (400ms phases at 500 req/s, for CI wiring checks).
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/architecture.hpp"
#include "core/predictor.hpp"
#include "net/http_server.hpp"
#include "net/loadgen.hpp"
#include "serve/router.hpp"
#include "tensor/kernels/dispatch.hpp"
#include "util/args.hpp"

using namespace bcop;

#ifndef BCOP_GIT_SHA
#define BCOP_GIT_SHA "unknown"
#endif

namespace {

net::LoadGenReport run_phase(const char* name, std::uint16_t port,
                             const util::Args& args, double rate,
                             int duration_ms) {
  net::LoadGenConfig cfg;
  cfg.port = port;
  cfg.shape = args.get("shape", "poisson");
  cfg.rate = rate;
  cfg.burst_factor = args.get_double("burst-factor", 4.0);
  cfg.duration = std::chrono::milliseconds(duration_ms);
  // Enough connections that the pipelined in-flight depth can fill the
  // batching queue past the shed watermark under overload; with too few,
  // backlog hides in socket buffers instead of becoming visible 503s.
  cfg.connections = static_cast<unsigned>(args.get_int("connections", 8));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  std::printf("[%s] offering %.0f req/s (%s) for %d ms ...\n", name, rate,
              cfg.shape.c_str(), duration_ms);
  const net::LoadGenReport report = net::run_loadgen(cfg);
  std::printf("[%s] %s\n", name, report.to_json().c_str());
  return report;
}

bool phase_healthy(const net::LoadGenReport& r) {
  return r.conserved() && r.lost == 0 && r.timed_out == 0 && r.err_4xx == 0 &&
         r.err_5xx == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv, {"smoke", "pin"});
  const bool smoke = args.get_flag("smoke");
  const double rate = args.get_double("rate", smoke ? 500.0 : 6000.0);
  const int duration_ms = args.get_int("duration-ms", smoke ? 400 : 3000);
  const double overload = args.get_double("overload-factor", 2.0);

  // Untrained weights: XNOR-popcount latency is weight-independent, so the
  // serving numbers are representative without a training phase.
  const core::Predictor predictor(
      core::build_bnn(core::ArchitectureId::kMicroCnv,
                      static_cast<std::uint64_t>(args.get_int("seed", 42))));
  serve::RouterConfig rcfg;
  rcfg.replicas = static_cast<int>(args.get_int("replicas", 2));
  rcfg.batcher.workers = static_cast<unsigned>(args.get_int("workers", 2));
  rcfg.pin_workers = args.get_flag("pin");
  serve::Router router(predictor, rcfg);
  net::HttpServerConfig hcfg;
  hcfg.workers = static_cast<unsigned>(args.get_int("http-workers", 2));
  hcfg.shed_watermark = args.get_int("watermark", 48);
  net::HttpServer http(router, hcfg);

  const net::LoadGenReport baseline =
      run_phase("baseline", http.port(), args, rate, duration_ms);
  net::LoadGenReport stress;
  const bool ran_overload = overload > 0;
  if (ran_overload)
    stress =
        run_phase("overload", http.port(), args, rate * overload, duration_ms);

  const std::string out = args.get("out", "bench_artifacts/loadgen.json");
  std::filesystem::create_directories(
      std::filesystem::path(out).parent_path());
  if (FILE* f = std::fopen(out.c_str(), "w")) {
    std::fprintf(f,
                 "{\n  \"rate\": %.1f,\n  \"shape\": \"%s\",\n"
                 "  \"overload_factor\": %.2f,\n"
                 "  \"kernel_level\": \"%s\",\n  \"replicas\": %d,\n"
                 "  \"workers_per_replica\": %u,\n  \"git_sha\": \"%s\",\n"
                 "  \"baseline\": %s",
                 rate, args.get("shape", "poisson").c_str(), overload,
                 tensor::kernels::kernel_level_name(
                     tensor::kernels::active_level()),
                 rcfg.replicas, rcfg.batcher.workers, BCOP_GIT_SHA,
                 baseline.to_json().c_str());
    if (ran_overload)
      std::fprintf(f, ",\n  \"overload\": %s", stress.to_json().c_str());
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("artifact written to %s\n", out.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }

  if (!phase_healthy(baseline) || (ran_overload && !phase_healthy(stress))) {
    std::fprintf(stderr,
                 "FAIL: lost/timed-out/error responses or broken "
                 "conservation -- see the artifact\n");
    return 1;
  }
  std::printf("OK: all requests accounted for (2xx or 503), no losses\n");
  return 0;
}
