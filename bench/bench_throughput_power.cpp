// Reproduces the Sec. IV-B throughput and power claims: ~6400
// classifications per second for n-CNV with a full pipeline, and ~1.6 W
// idle power in the single-entrance/gate setting for every prototype.
#include <cstdio>

#include "core/architecture.hpp"
#include "deploy/performance.hpp"
#include "deploy/power.hpp"
#include "deploy/resource.hpp"
#include "util/table.hpp"

using namespace bcop;

int main() {
  try {
    std::printf("Sec. IV-B: throughput and power of the Binary-CoP "
                "prototypes (100 MHz target clock)\n\n");
    util::AsciiTable t({"Config", "II (cycles)", "bottleneck", "FPS (model)",
                        "latency (ms)", "idle W", "active W", "mJ/frame",
                        "gate avg W @1% duty"});
    for (const auto arch :
         {core::ArchitectureId::kCnv, core::ArchitectureId::kNCnv,
          core::ArchitectureId::kMicroCnv}) {
      const auto specs = core::layer_specs(arch);
      const auto perf = deploy::analyze_performance(specs);
      const bool offload = arch == core::ArchitectureId::kMicroCnv;
      const auto power =
          deploy::estimate_power(deploy::estimate_resources(specs, offload));
      t.add_row({core::arch_name(arch),
                 std::to_string(perf.initiation_interval), perf.bottleneck,
                 util::fmt(perf.fps(), 0), util::fmt(perf.latency_ms(), 3),
                 util::fmt(power.idle_w, 1), util::fmt(power.active_w, 2),
                 util::fmt(power.energy_per_frame_mj(perf.fps()), 3),
                 util::fmt(power.average_w(0.01), 3)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\npaper claims: n-CNV ~6400 FPS when the pipeline is full; "
                "~1.6 W idle on single entrances/gates (all prototypes).\n");
    std::printf("model efficiency constant: %.2f (calibrated once against "
                "the n-CNV figure; see EXPERIMENTS.md).\n",
                deploy::kImplementationEfficiency);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_throughput_power: %s\n", e.what());
    return 1;
  }
}
