// Reproduces Fig. 5: Grad-CAM for the nose-and-mouth-exposed class. The
// paper's reading: all models distribute attention over several exposed
// facial features.
#include "bench_gradcam_common.hpp"

using namespace bcop;
using bench::base_subject;
using facegen::MaskClass;

int main() {
  auto a = base_subject(MaskClass::kNoseMouthExposed, 501);
  auto b = base_subject(MaskClass::kNoseMouthExposed, 502);
  b.hair_style = facegen::HairStyle::kLong;
  auto c = base_subject(MaskClass::kNoseMouthExposed, 503);
  c.mask_color = {0.15f, 0.15f, 0.18f};  // black chin-mask row

  return bench::run_gradcam_figure(
      "FIG5", "nose-and-mouth-exposed class",
      {{"subject_a", a}, {"long_hair", b}, {"black_mask", c}});
}
