// Ablation (DESIGN.md #1): max-pool as boolean OR.
//
// The paper (Sec. III-B) implements max pooling after binarization as a
// boolean OR. This is exact, not an approximation: sign() is monotone, so
//   sign(maxpool(x)) == or_pool(sign(x))
// for every input. This bench verifies the identity empirically over many
// random tensors and quantifies the hardware consequence: an OR tree per
// pooling window instead of a magnitude comparator tree on wide
// accumulators.
#include <cstdio>

#include "nn/maxpool.hpp"
#include "nn/sign_activation.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace bcop;
using tensor::Shape;
using tensor::Tensor;

int main() {
  try {
    util::Rng rng(4242);
    nn::MaxPool2 pool;
    nn::SignActivation sign;

    std::int64_t checked = 0, mismatches = 0;
    for (int trial = 0; trial < 200; ++trial) {
      const std::int64_t h = 2 * rng.uniform_int(1, 8);
      const std::int64_t c = rng.uniform_int(1, 16);
      Tensor x(Shape{1, h, h, c});
      for (std::int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.uniform(-3.0, 3.0));

      // Path A (training graph order): binarize, then pool (== OR).
      const Tensor a = pool.forward(sign.forward(x, false), false);
      // Path B (classic CNN order): pool the real values, then binarize.
      const Tensor b = sign.forward(pool.forward(x, false), false);

      for (std::int64_t i = 0; i < a.numel(); ++i, ++checked)
        if (a[i] != b[i]) ++mismatches;
    }

    std::printf("Ablation: pool-after-sign (boolean OR) vs "
                "sign-after-maxpool\n\n");
    std::printf("checked %lld pooled outputs over 200 random tensors: "
                "%lld mismatches\n",
                static_cast<long long>(checked),
                static_cast<long long>(mismatches));
    std::printf("=> the two orders are %s\n\n",
                mismatches == 0 ? "EXACTLY equivalent (as claimed)"
                                : "NOT equivalent (BUG)");

    // Hardware consequence: per pooled channel-pixel, an OR of 4 bits vs a
    // 3-comparison max over ~12-bit accumulators.
    util::AsciiTable t({"pooling variant", "logic per output", "approx LUTs"});
    t.add_row({"boolean OR on bits (deployed)", "4-input OR", "1"});
    t.add_row({"max on pre-BN accumulators", "3x 12-bit compare+mux", "~18"});
    std::printf("%s", t.render().c_str());
    std::printf("\nAcross n-CNV's two pooling stages (14x14x16 + 5x5x32 "
                "outputs = %d windows) the OR formulation saves roughly "
                "%d LUTs of pooling logic.\n",
                14 * 14 * 16 + 5 * 5 * 32,
                (14 * 14 * 16 + 5 * 5 * 32) / 4 * 17 / 16);
    return mismatches == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_ablation_pool_order: %s\n", e.what());
    return 1;
  }
}
