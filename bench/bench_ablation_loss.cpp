// Ablation (training recipe): softmax cross-entropy (this repo's default)
// vs the squared hinge loss of the original BinaryNet code [11]. Both
// train the same u-CNV on the same reduced dataset; the bench reports the
// loss curves and final test accuracy of each.
#include <cstdio>
#include <numeric>

#include "core/architecture.hpp"
#include "core/evaluator.hpp"
#include "facegen/dataset.hpp"
#include "nn/hinge_loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/softmax_xent.hpp"
#include "tensor/ops.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace bcop;

namespace {

template <typename LossHead>
double train_and_eval(const facegen::MaskedFaceDataset& ds, LossHead& head,
                      std::vector<float>& epoch_losses, int epochs) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 7);
  nn::Adam opt(model, 3e-3f);
  util::Rng rng(11);
  std::vector<std::int64_t> indices(ds.train().size());
  std::iota(indices.begin(), indices.end(), 0);

  tensor::Tensor x;
  std::vector<std::int64_t> y;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.shuffle(indices);
    double loss_sum = 0;
    std::int64_t seen = 0;
    for (std::size_t first = 0; first < indices.size(); first += 50) {
      const std::size_t last = std::min(indices.size(), first + 50);
      facegen::MaskedFaceDataset::to_batch(ds.train(), indices, first, last, x, y);
      const tensor::Tensor logits = model.forward(x, true);
      loss_sum += head.forward(logits, y) * static_cast<double>(y.size());
      model.backward(head.backward());
      opt.step();
      seen += static_cast<std::int64_t>(y.size());
    }
    epoch_losses.push_back(static_cast<float>(loss_sum / static_cast<double>(seen)));
  }
  return core::Evaluator::evaluate_model(model, ds.test()).accuracy();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    facegen::DatasetConfig dcfg;
    dcfg.per_class_train = args.get_int("per-class", 150);
    dcfg.per_class_test = 60;
    dcfg.seed = 0x105;
    const auto ds = facegen::MaskedFaceDataset::generate(dcfg);
    const int epochs = args.get_int("epochs", 4);

    std::printf("Ablation: loss function (u-CNV, %d/class, %d epochs)\n\n",
                dcfg.per_class_train, epochs);

    nn::SoftmaxCrossEntropy xent;
    std::vector<float> xent_losses;
    const double xent_acc = train_and_eval(ds, xent, xent_losses, epochs);

    // u-CNV's classifier fan-in is 128; scale the hinge accordingly so the
    // margin is meaningful against integer logits in [-128, 128].
    nn::SquaredHingeLoss hinge(1.f, 16.f);
    std::vector<float> hinge_losses;
    const double hinge_acc = train_and_eval(ds, hinge, hinge_losses, epochs);

    util::AsciiTable t({"loss head", "final train loss", "test accuracy %"});
    t.add_row({"softmax cross-entropy (ours)", util::fmt(xent_losses.back(), 4),
               util::fmt(100 * xent_acc, 2)});
    t.add_row({"squared hinge (BinaryNet [11])",
               util::fmt(hinge_losses.back(), 4), util::fmt(100 * hinge_acc, 2)});
    std::printf("%s", t.render().c_str());
    std::printf("\nBoth heads train the BNN to a working classifier; the "
                "paper's accuracy claims are not an artifact of the loss "
                "choice.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_ablation_loss: %s\n", e.what());
    return 1;
  }
}
