// Reproduces Fig. 1: the structure of the Binary-CoP accelerator. Prints
// the streaming pipeline of each prototype (SWU + MVTU per layer, pool
// units, PE/SIMD dimensioning) and runs one image through the functional
// simulator to show the per-stage cycle accounting.
#include <cstdio>

#include "bench_util.hpp"
#include "deploy/pipeline.hpp"
#include "facegen/renderer.hpp"
#include "util/table.hpp"

using namespace bcop;

int main() {
  try {
    util::Rng rng(1);
    const auto face = facegen::render_face(
        facegen::sample_attributes(facegen::MaskClass::kCorrect, rng));
    const auto x = facegen::MaskedFaceDataset::image_to_tensor(face.image);

    for (const auto arch :
         {core::ArchitectureId::kCnv, core::ArchitectureId::kNCnv,
          core::ArchitectureId::kMicroCnv}) {
      nn::Sequential model = core::build_bnn(arch, 7);
      xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
      deploy::StreamingPipeline pipeline(net, core::layer_specs(arch));
      std::printf("%s\n", pipeline.describe().c_str());

      const auto run = pipeline.run(x);
      util::AsciiTable t({"Stage", "compute cycles", "SWU stream cycles",
                          "effective", "share of II"});
      for (const auto& s : run.stages)
        t.add_row({s.name, std::to_string(s.compute_cycles),
                   std::to_string(s.stream_cycles),
                   std::to_string(s.effective()),
                   util::fmt(100.0 * static_cast<double>(s.effective()) /
                                 static_cast<double>(run.initiation_interval()),
                             1) +
                       "%"});
      std::printf("%s", t.render().c_str());
      std::printf("II = %lld cycles, single-image latency = %lld cycles "
                  "(%.2f ms @ 100 MHz)\n\n",
                  static_cast<long long>(run.initiation_interval()),
                  static_cast<long long>(run.latency_cycles()),
                  1e3 * static_cast<double>(run.latency_cycles()) / 100e6);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_fig1: %s\n", e.what());
    return 1;
  }
}
