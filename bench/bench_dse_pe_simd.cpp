// Design-space exploration in the spirit of Sec. IV-B: sweep the PE count
// of every MVTU of the n-CNV prototype around Table I's dimensioning and
// chart the throughput / resource trade-off. Table I's choice should sit
// near the knee: more PEs burn LUTs on non-bottleneck layers; fewer PEs
// throttle the pipeline.
#include <algorithm>
#include <cstdio>

#include "core/architecture.hpp"
#include "deploy/dse.hpp"
#include "deploy/performance.hpp"
#include "deploy/power.hpp"
#include "deploy/resource.hpp"
#include "util/table.hpp"

using namespace bcop;

namespace {

std::vector<core::LayerSpec> scale_pe(std::vector<core::LayerSpec> specs,
                                      double factor) {
  for (auto& s : specs) {
    const auto scaled = static_cast<std::int64_t>(
        std::max(1.0, static_cast<double>(s.pe) * factor));
    s.pe = std::min(scaled, s.matrix_rows());
  }
  return specs;
}

}  // namespace

int main() {
  try {
    std::printf("Design-space exploration: PE scaling around the n-CNV "
                "dimensioning of Table I\n\n");
    const auto base = core::layer_specs(core::ArchitectureId::kNCnv);
    const auto z20 = deploy::z7020();

    util::AsciiTable t({"PE scale", "FPS (model)", "II (cycles)", "bottleneck",
                        "LUT", "BRAM18", "fits Z7020", "FPS per kLUT"});
    for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      const auto specs = scale_pe(base, factor);
      const auto perf = deploy::analyze_performance(specs);
      const auto res = deploy::estimate_resources(specs, false);
      t.add_row({util::fmt(factor, 2) + "x", util::fmt(perf.fps(), 0),
                 std::to_string(perf.initiation_interval), perf.bottleneck,
                 std::to_string(res.lut), util::fmt(res.bram18, 1),
                 res.fits(z20.lut, z20.bram18, z20.dsp) ? "yes" : "NO",
                 util::fmt(perf.fps() / (static_cast<double>(res.lut) / 1000.0),
                           1)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nNote the saturation above 1x: Conv1.1's SIMD is pinned to "
                "the 3 input channels, so its MVTU (the paper's ~6400 FPS "
                "bottleneck) stops scaling with PE, and additional PEs only "
                "spend LUTs. Matched-throughput dimensioning (Sec. III-B) is "
                "exactly about avoiding both ends of this table.\n\n");

    // Automated matched-throughput search: can a greedy explorer rediscover
    // a Table-I-class dimensioning from scratch?
    deploy::DseGoal goal;
    goal.target_fps = 6400;
    const auto dse = deploy::explore(base, goal);
    std::printf("Auto-DSE (target 6400 FPS on the Z7020, %zu widening "
                "steps): %s\n",
                dse.trajectory.size(),
                dse.met_target ? "target met" : "target NOT met");
    util::AsciiTable t2({"Layer", "auto PE", "auto SIMD", "Table I PE",
                         "Table I SIMD"});
    for (std::size_t i = 0; i < dse.specs.size(); ++i)
      t2.add_row({dse.specs[i].name, std::to_string(dse.specs[i].pe),
                  std::to_string(dse.specs[i].simd),
                  std::to_string(base[i].pe), std::to_string(base[i].simd)});
    std::printf("%s", t2.render().c_str());
    std::printf("auto-DSE result: %.0f FPS with %lld LUTs (Table I "
                "dimensioning: %.0f FPS with %lld LUTs)\n",
                dse.performance.fps(),
                static_cast<long long>(dse.resources.lut),
                deploy::analyze_performance(base).fps(),
                static_cast<long long>(
                    deploy::estimate_resources(base, false).lut));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_dse_pe_simd: %s\n", e.what());
    return 1;
  }
}
