// Reproduces Fig. 2: the confusion matrix of Binary-CoP-CNV on the test
// set. The paper reports ~98% on each diagonal entry after balancing.
#include <cstdio>

#include "bench_util.hpp"
#include "core/evaluator.hpp"
#include "util/args.hpp"
#include "xnor/engine.hpp"

using namespace bcop;

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    const int per_class = args.get_int("test-per-class", 500);

    nn::Sequential model = bench::load_model(core::ArchitectureId::kCnv);
    xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
    const auto eval_set = bench::make_eval_set(per_class);
    const auto cm = core::Evaluator::evaluate_xnor(net, eval_set);

    std::printf("FIG. 2: Confusion matrix of Binary-CoP-CNV on the test set "
                "(%d samples/class)\n\n%s\n",
                per_class, cm.render().c_str());
    std::printf("overall accuracy: %.2f%% (paper: 98.10%%)\n",
                100.0 * cm.accuracy());
    for (int c = 0; c < facegen::kNumClasses; ++c)
      std::printf("  recall %-8s %.1f%% (paper: ~98%%)\n",
                  facegen::class_short_name(static_cast<facegen::MaskClass>(c)),
                  100.0 * cm.recall(c));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_fig2: %s\n", e.what());
    return 1;
  }
}
