// Ablation (DESIGN.md #3): first-layer input bit-width. FINN-style
// accelerators feed the first MVTU fixed-point pixels; this sweep
// re-quantizes the test images to 1..8 bits per channel and measures the
// folded n-CNV's accuracy, showing why 8-bit input costs nothing while
// 1-2 bit input visibly hurts.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/evaluator.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "xnor/engine.hpp"

using namespace bcop;

namespace {

std::vector<facegen::Sample> requantize(std::vector<facegen::Sample> set,
                                        int bits) {
  const float levels = static_cast<float>((1 << bits) - 1);
  for (auto& s : set)
    for (auto& v : s.image.data())
      v = std::round(v * levels) / levels;
  return set;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    const int per_class = args.get_int("test-per-class", 250);

    nn::Sequential model = bench::load_model(core::ArchitectureId::kNCnv);
    xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
    const auto eval_set = bench::make_eval_set(per_class);

    std::printf("Ablation: input quantization bit-width (n-CNV, %d test "
                "samples)\n\n",
                4 * per_class);
    util::AsciiTable t({"input bits", "accuracy %"});
    for (const int bits : {1, 2, 3, 4, 6, 8}) {
      const auto quantized = requantize(eval_set, bits);
      const double acc =
          core::Evaluator::evaluate_xnor(net, quantized).accuracy();
      t.add_row({std::to_string(bits), util::fmt(100 * acc, 2)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(8 bits is the deployed configuration; training consumed "
                "8-bit-gridded pixels, so that row is the reference.)\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_ablation_input_quant: %s\n", e.what());
    return 1;
  }
}
