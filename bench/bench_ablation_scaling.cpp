// Ablation (paper Sec. II-B): plain BNN [11] vs XNOR-Net-style scaling
// factors [12]. The paper argues that "for the task of face-mask detection
// with low scene complexity, more efficient forms of BNNs [11] can be
// applied" -- i.e. the scaling factors' extra deployment cost buys nothing
// here. Both variants of the u-CNV conv stack train on the same data; the
// bench reports accuracies and the deployment-cost delta.
#include <cstdio>
#include <numeric>

#include "core/architecture.hpp"
#include "core/evaluator.hpp"
#include "facegen/dataset.hpp"
#include "nn/batchnorm.hpp"
#include "nn/binary_conv2d.hpp"
#include "nn/binary_dense.hpp"
#include "nn/flatten.hpp"
#include "nn/maxpool.hpp"
#include "nn/optimizer.hpp"
#include "nn/scaled_binary_conv2d.hpp"
#include "nn/sign_activation.hpp"
#include "nn/softmax_xent.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace bcop;

namespace {

nn::Sequential build_ucnv(bool scaled, std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Sequential model(scaled ? "u-CNV-xnor-net" : "u-CNV-bnn");
  const auto specs = core::layer_specs(core::ArchitectureId::kMicroCnv);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& s = specs[i];
    if (s.is_conv) {
      if (scaled)
        model.emplace<nn::ScaledBinaryConv2d>(s.k, s.ci, s.co, rng);
      else
        model.emplace<nn::BinaryConv2d>(s.k, s.ci, s.co, rng);
      model.emplace<nn::BatchNorm>(s.co);
      model.emplace<nn::SignActivation>();
      if (s.pool_after) model.emplace<nn::MaxPool2>();
    } else {
      if (s.name == "FC.1") model.emplace<nn::Flatten>();
      model.emplace<nn::BinaryDense>(s.ci, s.co, rng);
      if (i + 1 < specs.size()) {
        model.emplace<nn::BatchNorm>(s.co);
        model.emplace<nn::SignActivation>();
      }
    }
  }
  return model;
}

double train_and_eval(nn::Sequential& model,
                      const facegen::MaskedFaceDataset& ds, int epochs) {
  nn::Adam opt(model, 3e-3f);
  nn::SoftmaxCrossEntropy head;
  util::Rng rng(11);
  std::vector<std::int64_t> indices(ds.train().size());
  std::iota(indices.begin(), indices.end(), 0);
  tensor::Tensor x;
  std::vector<std::int64_t> y;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.shuffle(indices);
    for (std::size_t first = 0; first < indices.size(); first += 50) {
      const std::size_t last = std::min(indices.size(), first + 50);
      facegen::MaskedFaceDataset::to_batch(ds.train(), indices, first, last, x, y);
      head.forward(model.forward(x, true), y);
      model.backward(head.backward());
      opt.step();
    }
  }
  return core::Evaluator::evaluate_model(model, ds.test()).accuracy();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    facegen::DatasetConfig dcfg;
    dcfg.per_class_train = args.get_int("per-class", 150);
    dcfg.per_class_test = 60;
    dcfg.seed = 0x5ca1e;
    const auto ds = facegen::MaskedFaceDataset::generate(dcfg);
    const int epochs = args.get_int("epochs", 4);

    std::printf("Ablation: plain BNN [11] vs XNOR-Net scaling factors [12] "
                "(u-CNV conv stack, %d/class, %d epochs)\n\n",
                dcfg.per_class_train, epochs);

    nn::Sequential plain = build_ucnv(false, 7);
    nn::Sequential scaled = build_ucnv(true, 7);
    const double acc_plain = train_and_eval(plain, ds, epochs);
    const double acc_scaled = train_and_eval(scaled, ds, epochs);

    // Deployment cost of the scaling: one multiplier per output pixel and
    // channel of every conv layer (the thresholds can absorb alpha only
    // when it is folded per-channel into BN, which restores the plain BNN;
    // XNOR-Net's published form keeps the multiply).
    std::int64_t extra_multiplies = 0;
    for (const auto& s : core::layer_specs(core::ArchitectureId::kMicroCnv))
      if (s.is_conv) extra_multiplies += s.output_vectors() * s.co;

    util::AsciiTable t({"variant", "test accuracy %", "extra mults/image"});
    t.add_row({"plain BNN (paper's choice)", util::fmt(100 * acc_plain, 2), "0"});
    t.add_row({"XNOR-Net scaling", util::fmt(100 * acc_scaled, 2),
               std::to_string(extra_multiplies)});
    std::printf("%s", t.render().c_str());
    std::printf("\npaper Sec. II-B: scaling factors add capacity the "
                "low-complexity mask task does not need -- accuracies should "
                "be comparable while the plain BNN deploys multiplier-free.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_ablation_scaling: %s\n", e.what());
    return 1;
  }
}
