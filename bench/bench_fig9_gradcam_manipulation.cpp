// Reproduces Fig. 9: Grad-CAM under face manipulation -- double masks,
// face paint and sunglasses. The paper's reading: both BNN variants keep
// focusing on the label-relevant features despite the manipulations.
#include "bench_gradcam_common.hpp"

using namespace bcop;
using bench::base_subject;
using facegen::MaskClass;

int main() {
  auto double_mask = base_subject(MaskClass::kCorrect, 901);
  double_mask.double_mask = true;
  double_mask.mask2_color = {0.15f, 0.15f, 0.18f};  // black over blue

  auto painted = base_subject(MaskClass::kNoseExposed, 902);
  painted.face_paint = true;
  painted.paint_color = {0.9f, 0.2f, 0.2f};

  auto shades = base_subject(MaskClass::kChinExposed, 903);
  shades.sunglasses = true;

  return bench::run_gradcam_figure(
      "FIG9", "face manipulation (double mask / face paint / sunglasses)",
      {{"double_mask", double_mask},
       {"face_paint", painted},
       {"sunglasses", shades}});
}
