// Reproduces Fig. 4: Grad-CAM for the nose-exposed class. The paper's
// reading: the BNNs focus on the exposed nose and the straight upper edge
// of the lowered mask.
#include "bench_gradcam_common.hpp"

using namespace bcop;
using bench::base_subject;
using facegen::MaskClass;

int main() {
  auto a = base_subject(MaskClass::kNoseExposed, 401);
  auto b = base_subject(MaskClass::kNoseExposed, 402);
  b.skin = {0.95f, 0.80f, 0.68f};
  auto c = base_subject(MaskClass::kNoseExposed, 403);
  c.mask_color = {0.92f, 0.93f, 0.94f};  // white mask row

  return bench::run_gradcam_figure(
      "FIG4", "nose-exposed class",
      {{"subject_a", a}, {"subject_b", b}, {"white_mask", c}});
}
