// Shared helpers for the table/figure reproduction binaries.
//
// Each bench loads the pre-trained model produced by examples/
// train_binarycop when available (searching a few likely run directories)
// and otherwise quick-trains a reduced model so that every binary is
// runnable from a fresh checkout. The test sets used for accuracy numbers
// are regenerated deterministically from fixed seeds.
#pragma once

#include <filesystem>
#include <string>

#include "core/architecture.hpp"
#include "core/trainer.hpp"
#include "facegen/augment.hpp"
#include "facegen/dataset.hpp"
#include "nn/sequential.hpp"
#include "util/log.hpp"

namespace bcop::bench {

inline std::string find_model_file(const std::string& stem) {
  for (const char* prefix : {"models/", "../models/", "../../models/"}) {
    const std::string path = std::string(prefix) + stem + ".bcop";
    if (std::filesystem::exists(path)) return path;
  }
  return {};
}

inline std::string model_stem(core::ArchitectureId arch) {
  switch (arch) {
    case core::ArchitectureId::kCnv: return "cnv";
    case core::ArchitectureId::kNCnv: return "ncnv";
    case core::ArchitectureId::kMicroCnv: return "ucnv";
  }
  return "unknown";
}

/// Load the trained prototype, or quick-train a reduced stand-in.
inline nn::Sequential load_model(core::ArchitectureId arch) {
  const std::string path = find_model_file(model_stem(arch));
  if (!path.empty()) {
    util::log_info("using pre-trained ", core::arch_name(arch), " from ", path);
    return nn::Sequential::load_file(path);
  }
  util::log_warn("no pre-trained ", core::arch_name(arch),
                 " found -- quick-training a reduced model (run "
                 "examples/train_binarycop for full numbers)");
  facegen::DatasetConfig dcfg;
  dcfg.per_class_train = 250;
  dcfg.per_class_test = 50;
  const auto ds = facegen::MaskedFaceDataset::generate(dcfg);
  nn::Sequential model = core::build_bnn(arch, 7);
  core::TrainConfig tcfg;
  tcfg.epochs = 5;
  tcfg.eval_every = 0;
  core::Trainer(model, tcfg).fit(ds.train(), {});
  return model;
}

/// Load the FP32 CNV Grad-CAM baseline, or quick-train a stand-in.
inline nn::Sequential load_fp32_model() {
  const std::string path = find_model_file("fp32_cnv");
  if (!path.empty()) {
    util::log_info("using pre-trained FP32-CNV from ", path);
    return nn::Sequential::load_file(path);
  }
  util::log_warn("no pre-trained FP32-CNV found -- quick-training");
  facegen::DatasetConfig dcfg;
  dcfg.per_class_train = 200;
  dcfg.per_class_test = 50;
  const auto ds = facegen::MaskedFaceDataset::generate(dcfg);
  nn::Sequential model = core::build_fp32_cnv(7);
  core::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.eval_every = 0;
  core::Trainer(model, tcfg).fit(ds.train(), {});
  return model;
}

/// Deterministic evaluation set shared by the accuracy benches.
inline std::vector<facegen::Sample> make_eval_set(int per_class,
                                                  std::uint64_t seed = 0x7e57) {
  facegen::DatasetConfig cfg;
  cfg.per_class_train = 4;  // unused but must be positive
  cfg.per_class_test = per_class;
  cfg.seed = seed;
  return facegen::MaskedFaceDataset::generate(cfg).test();
}

/// Heavily-augmented variant of an evaluation set (the "hard" split).
inline std::vector<facegen::Sample> make_hard_eval_set(
    int per_class, std::uint64_t seed = 0x7e57) {
  auto set = make_eval_set(per_class, seed);
  util::Rng rng(seed ^ 0x5eed);
  for (auto& s : set) facegen::random_augment_heavy(s.image, rng);
  return set;
}

}  // namespace bcop::bench
