// Residual binarization accuracy/FPS frontier (docs/residual-binarization.md).
//
// ReBNet-style residual binarization trains ONE model at M = 3 levels and
// serves it at any truncated depth M in {1, 2, 3}: each extra level adds
// one more XNOR-popcount GEMM pass (and its pattern threshold banks) in
// exchange for a closer approximation of the float activations. This
// bench measures that trade empirically per prototype:
//
//   for each architecture:   train once at M = 3, fold once
//     for each level cap M:  accuracy on a held-out facegen test set
//                            + steady-state batched FPS at that cap
//
// Accuracy uses core::Evaluator::evaluate_xnor at the cap; FPS times the
// allocation-free forward_batch(x, ws, out, M) serving path after a warm
// call, so the numbers are the same path serve::TieredRouter pays for
// its low and high tiers. All caps run against the SAME folded network
// and plan cache -- the frontier isolates the cost of depth, nothing
// else.
//
// The JSON artifact (--out, default bench_artifacts/residual_frontier.json)
// records per-point accuracy, FPS and the mean softmax margin (the
// escalation-threshold tuning signal), plus provenance (git SHA, kernel
// tier, dataset/training shape) -- docs/benchmarks.md describes how to
// read it.
//
// Knobs: --arch-list cnv,ncnv,ucnv --levels-list 1,2,3 --epochs N
// --per-class-train N --per-class-test N --batch N --reps N --seed S
// --out PATH --smoke (uCNV only, tiny dataset/reps, for CI wiring).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/architecture.hpp"
#include "core/evaluator.hpp"
#include "core/trainer.hpp"
#include "facegen/dataset.hpp"
#include "tensor/kernels/dispatch.hpp"
#include "util/args.hpp"
#include "xnor/engine.hpp"
#include "xnor/plan.hpp"

using namespace bcop;

#ifndef BCOP_GIT_SHA
#define BCOP_GIT_SHA "unknown"
#endif

namespace {

struct FrontierPoint {
  std::int64_t levels = 0;
  double accuracy = 0;
  double fps = 0;
  double mean_margin = 0;  // mean softmax top1-top2 gap on the test set
};

struct ArchResult {
  std::string arch;
  std::int64_t weight_bits = 0;
  std::vector<FrontierPoint> points;
};

core::ArchitectureId parse_arch(const std::string& name) {
  if (name == "cnv") return core::ArchitectureId::kCnv;
  if (name == "ncnv") return core::ArchitectureId::kNCnv;
  if (name == "ucnv") return core::ArchitectureId::kMicroCnv;
  throw std::invalid_argument("unknown architecture: " + name);
}

std::vector<std::string> parse_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Steady-state batched FPS at one level cap: warm call compiles the
/// capped plan and grows the arena, then `reps` timed calls reuse both.
double measure_fps(const xnor::XnorNetwork& net, const tensor::Tensor& x,
                   std::int64_t levels, int reps) {
  xnor::Workspace ws;
  tensor::Tensor out;
  net.forward_batch(x, ws, out, levels);  // warm
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) net.forward_batch(x, ws, out, levels);
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  const double images = static_cast<double>(reps) *
                        static_cast<double>(x.shape()[0]);
  return seconds > 0 ? images / seconds : 0.0;
}

/// Mean softmax top1-top2 margin over the test set at one level cap --
/// the distribution serve::TieredRouter's margin_threshold cuts.
double mean_margin(const xnor::XnorNetwork& net,
                   const std::vector<facegen::Sample>& samples,
                   std::int64_t levels) {
  double total = 0;
  std::int64_t n = 0;
  tensor::Tensor x(tensor::Shape{1, 32, 32, 3});
  for (const auto& s : samples) {
    const tensor::Tensor img =
        facegen::MaskedFaceDataset::image_to_tensor(s.image);
    const tensor::Tensor logits = net.forward_batch(img, levels);
    const std::int64_t classes = logits.shape()[1];
    // Softmax margin straight from the logits (monotone transform).
    float mx = logits[0];
    for (std::int64_t c = 1; c < classes; ++c)
      mx = std::max(mx, logits[c]);
    double sum = 0, top1 = 0, top2 = 0;
    for (std::int64_t c = 0; c < classes; ++c) {
      const double p = std::exp(static_cast<double>(logits[c] - mx));
      sum += p;
      if (p > top1) {
        top2 = top1;
        top1 = p;
      } else if (p > top2) {
        top2 = p;
      }
    }
    total += (top1 - top2) / sum;
    ++n;
  }
  return n ? total / static_cast<double>(n) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv, {"smoke"});
    const bool smoke = args.get_flag("smoke");
    const int epochs = args.get_int("epochs", smoke ? 1 : 8);
    const int per_class_train =
        args.get_int("per-class-train", smoke ? 24 : 400);
    const int per_class_test = args.get_int("per-class-test", smoke ? 8 : 80);
    const std::int64_t batch =
        static_cast<std::int64_t>(args.get_int("batch", smoke ? 4 : 32));
    const int reps = args.get_int("reps", smoke ? 3 : 20);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 7));
    const std::vector<std::string> arch_names =
        parse_list(args.get("arch-list", smoke ? "ucnv" : "ncnv,ucnv"));
    const std::vector<std::string> level_names =
        parse_list(args.get("levels-list", "1,2,3"));

    facegen::DatasetConfig dcfg;
    dcfg.per_class_train = per_class_train;
    dcfg.per_class_test = per_class_test;
    dcfg.seed = seed;
    const auto ds = facegen::MaskedFaceDataset::generate(dcfg);

    std::vector<ArchResult> results;
    for (const std::string& arch_name : arch_names) {
      const core::ArchitectureId arch = parse_arch(arch_name);
      // One model, trained once at the FULL residual depth; every sweep
      // point below is a truncation of this same network.
      nn::Sequential model =
          core::build_bnn(arch, seed, /*residual_levels=*/3);
      core::TrainConfig tcfg;
      tcfg.epochs = epochs;
      tcfg.eval_every = 0;
      core::Trainer(model, tcfg).fit(ds.train(), {});
      const xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);

      ArchResult ar;
      ar.arch = core::arch_name(arch);
      ar.weight_bits = net.weight_bits();
      // Timing input: one fixed batch of test images.
      tensor::Tensor x(tensor::Shape{batch, 32, 32, 3});
      for (std::int64_t i = 0; i < batch; ++i) {
        const auto& s = ds.test()[static_cast<std::size_t>(i) %
                                  ds.test().size()];
        const tensor::Tensor img =
            facegen::MaskedFaceDataset::image_to_tensor(s.image);
        for (std::int64_t j = 0; j < img.numel(); ++j)
          x[i * img.numel() + j] = img[j];
      }

      for (const std::string& level_name : level_names) {
        FrontierPoint pt;
        pt.levels = std::stoll(level_name);
        pt.accuracy = core::Evaluator::evaluate_xnor(net, ds.test(),
                                                     /*batch_size=*/64,
                                                     pt.levels)
                          .accuracy();
        pt.fps = measure_fps(net, x, pt.levels, reps);
        pt.mean_margin = mean_margin(net, ds.test(), pt.levels);
        std::printf("%s M=%lld: accuracy %.4f | %.0f FPS | mean margin "
                    "%.3f\n",
                    ar.arch.c_str(), static_cast<long long>(pt.levels),
                    pt.accuracy, pt.fps, pt.mean_margin);
        ar.points.push_back(pt);
      }
      results.push_back(std::move(ar));
    }

    const std::string out =
        args.get("out", "bench_artifacts/residual_frontier.json");
    std::filesystem::create_directories(
        std::filesystem::path(out).parent_path());
    FILE* f = std::fopen(out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"trained_levels\": 3,\n  \"epochs\": %d,\n"
                 "  \"per_class_train\": %d,\n  \"per_class_test\": %d,\n"
                 "  \"timing_batch\": %lld,\n  \"timing_reps\": %d,\n"
                 "  \"kernel_level\": \"%s\",\n  \"git_sha\": \"%s\",\n"
                 "  \"archs\": [",
                 epochs, per_class_train, per_class_test,
                 static_cast<long long>(batch), reps,
                 tensor::kernels::kernel_level_name(
                     tensor::kernels::active_level()),
                 BCOP_GIT_SHA);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ArchResult& ar = results[i];
      std::fprintf(f,
                   "%s\n    {\"arch\": \"%s\", \"weight_bits\": %lld, "
                   "\"points\": [",
                   i ? "," : "", ar.arch.c_str(),
                   static_cast<long long>(ar.weight_bits));
      for (std::size_t p = 0; p < ar.points.size(); ++p)
        std::fprintf(f,
                     "%s\n      {\"levels\": %lld, \"accuracy\": %.6f, "
                     "\"fps\": %.1f, \"mean_margin\": %.6f}",
                     p ? "," : "",
                     static_cast<long long>(ar.points[p].levels),
                     ar.points[p].accuracy, ar.points[p].fps,
                     ar.points[p].mean_margin);
      std::fprintf(f, "\n    ]}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("frontier artifact written to %s\n", out.c_str());

    // Regression gate for CI: each sweep must produce one point per
    // requested level with sane values (accuracy is a probability, FPS is
    // positive). Accuracy ORDERING across levels is noisy on smoke-sized
    // training runs, so it is reported, not asserted.
    for (const ArchResult& ar : results) {
      if (ar.points.size() != level_names.size()) {
        std::fprintf(stderr, "FAIL: %s produced %zu of %zu points\n",
                     ar.arch.c_str(), ar.points.size(), level_names.size());
        return 1;
      }
      for (const FrontierPoint& pt : ar.points) {
        if (pt.accuracy < 0 || pt.accuracy > 1 || pt.fps <= 0) {
          std::fprintf(stderr, "FAIL: %s M=%lld has invalid point\n",
                       ar.arch.c_str(), static_cast<long long>(pt.levels));
          return 1;
        }
      }
    }
    std::printf("OK: frontier complete\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_residual_frontier: %s\n", e.what());
    return 1;
  }
}
