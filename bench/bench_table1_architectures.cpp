// Reproduces Table I: network architectures and hardware dimensioning for
// the three Binary-CoP prototypes, plus the derived footprint numbers
// (parameter count, binary weight bits) that motivate the designs.
#include <cstdio>

#include "core/architecture.hpp"
#include "util/table.hpp"
#include "xnor/engine.hpp"

using namespace bcop;

int main() {
  try {
    std::printf("TABLE I: Network architectures and hardware dimensioning\n\n");
    for (const auto arch :
         {core::ArchitectureId::kCnv, core::ArchitectureId::kNCnv,
          core::ArchitectureId::kMicroCnv}) {
      std::printf("=== %s ===\n", core::arch_name(arch));
      util::AsciiTable t({"Layer", "Ci", "Co", "K", "In", "Out", "PE", "SIMD",
                          "weights(bits)", "ops/image"});
      const auto specs = core::layer_specs(arch);
      for (const auto& s : specs) {
        t.add_row({s.name, std::to_string(s.ci), std::to_string(s.co),
                   s.is_conv ? std::to_string(s.k) : "-",
                   std::to_string(s.in_h) + "x" + std::to_string(s.in_w),
                   std::to_string(s.out_h) + "x" + std::to_string(s.out_w) +
                       (s.pool_after ? " +pool" : ""),
                   std::to_string(s.pe), std::to_string(s.simd),
                   std::to_string(s.weight_count()),
                   std::to_string(s.ops_per_image())});
      }
      std::printf("%s", t.render().c_str());

      nn::Sequential model = core::build_bnn(arch, 7);
      xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
      std::printf("trainable parameters: %lld | deployed footprint: %lld bits "
                  "(%.1f KiB) vs %.1f KiB at FP32 (x%.1f smaller)\n\n",
                  static_cast<long long>(model.parameter_count()),
                  static_cast<long long>(net.weight_bits()),
                  static_cast<double>(net.weight_bits()) / 8.0 / 1024.0,
                  static_cast<double>(model.parameter_count()) * 4.0 / 1024.0,
                  static_cast<double>(model.parameter_count()) * 32.0 /
                      static_cast<double>(net.weight_bits()));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_table1: %s\n", e.what());
    return 1;
  }
}
