// Reproduces Table II: hardware results of the design space exploration --
// LUT / BRAM / DSP from the calibrated resource model and test accuracy of
// the trained prototypes (evaluated through the folded XNOR network, i.e.
// exactly what the FPGA would compute). Also reports the "hard" evaluation
// split (heavily augmented), which separates model capacities the way the
// real MaskedFace-Net separates them (see EXPERIMENTS.md).
#include <cstdio>

#include "bench_util.hpp"
#include "core/evaluator.hpp"
#include "deploy/resource.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "xnor/engine.hpp"

using namespace bcop;

namespace {
struct PaperRow {
  const char* name;
  double lut, bram, dsp, acc;
};
constexpr PaperRow kPaper[] = {
    {"CNV", 26060, 124, 24, 98.10},
    {"n-CNV", 20425, 10.5, 14, 93.94},
    {"u-CNV", 11738, 14, 27, 93.78},
};
}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    const int per_class = args.get_int("test-per-class", 400);
    const auto eval_set = bench::make_eval_set(per_class);
    const auto hard_set = bench::make_hard_eval_set(per_class);

    std::printf("TABLE II: Hardware results of design space exploration\n");
    std::printf("(paper values in parentheses; accuracy measured on %d "
                "synthetic test samples via the folded XNOR network)\n\n",
                4 * per_class);

    util::AsciiTable t({"Configuration", "LUT", "BRAM18", "DSP", "Acc. %",
                        "Hard-set Acc. %", "Target part"});
    const core::ArchitectureId arches[] = {core::ArchitectureId::kCnv,
                                           core::ArchitectureId::kNCnv,
                                           core::ArchitectureId::kMicroCnv};
    for (int i = 0; i < 3; ++i) {
      const auto arch = arches[i];
      const bool offload = arch == core::ArchitectureId::kMicroCnv;
      const auto est =
          deploy::estimate_resources(core::layer_specs(arch), offload);

      nn::Sequential model = bench::load_model(arch);
      xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
      const double acc =
          core::Evaluator::evaluate_xnor(net, eval_set).accuracy();
      const double hard_acc =
          core::Evaluator::evaluate_xnor(net, hard_set).accuracy();

      const auto part = offload ? deploy::z7010() : deploy::z7020();
      t.add_row({std::string(core::arch_name(arch)),
                 std::to_string(est.lut) + " (" + util::fmt(kPaper[i].lut, 0) + ")",
                 util::fmt(est.bram18, 1) + " (" + util::fmt(kPaper[i].bram, 1) + ")",
                 std::to_string(est.dsp) + " (" + util::fmt(kPaper[i].dsp, 0) + ")",
                 util::fmt(100 * acc, 2) + " (" + util::fmt(kPaper[i].acc, 2) + ")",
                 util::fmt(100 * hard_acc, 2),
                 part.name + (est.fits(part.lut, part.bram18, part.dsp)
                                  ? " [fits]"
                                  : " [DOES NOT FIT]")});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nu-CNV uses the OrthrusPE-style DSP offloading of XNOR "
                "compute [27], which is what makes it synthesizable on the "
                "Z7010's %lld LUTs.\n",
                static_cast<long long>(deploy::z7010().lut));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_table2: %s\n", e.what());
    return 1;
  }
}
