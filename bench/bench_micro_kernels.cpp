// Micro-benchmarks (google-benchmark) for the kernels behind the system:
// float GEMM vs XNOR-popcount GEMM (the paper's core efficiency claim in
// software form), patch extraction, bit packing, face rendering, folding
// and whole-network inference.
#include <benchmark/benchmark.h>

#include <string>

#include "core/architecture.hpp"
#include "deploy/pipeline.hpp"
#include "facegen/dataset.hpp"
#include "facegen/renderer.hpp"
#include "tensor/bit_span.hpp"
#include "tensor/bit_tensor.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2row.hpp"
#include "tensor/kernels/dispatch.hpp"
#include "util/rng.hpp"
#include "xnor/engine.hpp"

namespace {

using namespace bcop;
using tensor::BitMatrix;
using tensor::Shape;
using tensor::Tensor;

std::vector<float> random_signs(std::int64_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.bernoulli(0.5) ? 1.f : -1.f;
  return v;
}

// conv1.2 of CNV as a GEMM: [784, 576] x [576, 64].
void BM_FloatGemmConv12(benchmark::State& state) {
  const std::int64_t M = 784, N = 64, K = 576;
  const auto a = random_signs(M * K, 1);
  const auto b = random_signs(K * N, 2);
  std::vector<float> c(static_cast<std::size_t>(M * N));
  for (auto _ : state) {
    tensor::gemm_nn(M, N, K, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * M * N * K);
}
BENCHMARK(BM_FloatGemmConv12);

void BM_XnorGemmConv12(benchmark::State& state) {
  const std::int64_t M = 784, N = 64, K = 576;
  const auto a = random_signs(M * K, 3);
  const auto b = random_signs(N * K, 4);
  const BitMatrix pa = tensor::pack_matrix(a.data(), M, K);
  const BitMatrix pb = tensor::pack_matrix(b.data(), N, K);
  std::vector<std::int32_t> c;
  for (auto _ : state) {
    tensor::binary_gemm(pa, pb, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * M * N * K);
}
BENCHMARK(BM_XnorGemmConv12);

void BM_PackMatrix(benchmark::State& state) {
  const std::int64_t M = 784, K = 576;
  const auto a = random_signs(M * K, 5);
  for (auto _ : state) {
    const BitMatrix p = tensor::pack_matrix(a.data(), M, K);
    benchmark::DoNotOptimize(p.storage().data());
  }
  state.SetItemsProcessed(state.iterations() * M * K);
}
BENCHMARK(BM_PackMatrix);

void BM_Im2Row32x32(benchmark::State& state) {
  util::Rng rng(6);
  Tensor x(Shape{1, 32, 32, 64});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  Tensor rows;
  for (auto _ : state) {
    tensor::im2row(x, 3, rows);
    benchmark::DoNotOptimize(rows.data());
  }
}
BENCHMARK(BM_Im2Row32x32);

void BM_RenderFace(benchmark::State& state) {
  util::Rng rng(7);
  for (auto _ : state) {
    const auto attrs = facegen::sample_attributes(
        static_cast<facegen::MaskClass>(state.iterations() % 4), rng);
    const auto r = facegen::render_face(attrs);
    benchmark::DoNotOptimize(r.image.data().data());
  }
}
BENCHMARK(BM_RenderFace);

void BM_FoldNCnv(benchmark::State& state) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kNCnv, 8);
  for (auto _ : state) {
    xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
    benchmark::DoNotOptimize(&net);
  }
}
BENCHMARK(BM_FoldNCnv);

void BM_XnorForwardNCnv(benchmark::State& state) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kNCnv, 9);
  const xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
  util::Rng rng(10);
  const auto attrs =
      facegen::sample_attributes(facegen::MaskClass::kCorrect, rng);
  const auto x = facegen::MaskedFaceDataset::image_to_tensor(
      facegen::render_face(attrs).image);
  for (auto _ : state) {
    const Tensor logits = net.forward(x);
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK(BM_XnorForwardNCnv);

void BM_FloatForwardNCnv(benchmark::State& state) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kNCnv, 11);
  util::Rng rng(12);
  const auto attrs =
      facegen::sample_attributes(facegen::MaskClass::kCorrect, rng);
  const auto x = facegen::MaskedFaceDataset::image_to_tensor(
      facegen::render_face(attrs).image);
  for (auto _ : state) {
    const Tensor logits = model.forward(x, false);
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK(BM_FloatForwardNCnv);

// ---- Per-tier kernel rows: one row per compiled+executable dispatch ----
// tier, same geometry, so the report shows scalar vs avx2 vs avx512 side
// by side (docs/benchmarks.md). Each bench drives the tier's chunk
// function directly, single-chunk, to isolate kernel throughput from the
// pool fan-out.

namespace kn = tensor::kernels;

void kernel_gemm_tier(benchmark::State& state, kn::KernelLevel lvl) {
  // conv1.2 of CNV as a GEMM: [784, 576] x [576, 64].
  const std::int64_t M = 784, N = 64, K = 576;
  const auto a = random_signs(M * K, 3);
  const auto b = random_signs(N * K, 4);
  const BitMatrix pa = tensor::pack_matrix(a.data(), M, K);
  const BitMatrix pb = tensor::pack_matrix(b.data(), N, K);
  std::vector<std::uint64_t> bt(
      static_cast<std::size_t>(pb.rows() * pb.words_per_row()));
  tensor::transpose_word_major(tensor::span_of(pb), bt.data());
  std::vector<std::int32_t> c(static_cast<std::size_t>(M * N));
  const kn::KernelTable& table = kn::table_for(lvl);
  for (auto _ : state) {
    kn::GemmCtx ctx{tensor::span_of(pa), bt.data(), N, c.data()};
    table.gemm(&ctx, 0, M);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * M * N * K);
}

void kernel_thresh_tier(benchmark::State& state, kn::KernelLevel lvl) {
  const std::int64_t rows = 784, C = 256;
  util::Rng rng(15);
  std::vector<std::int32_t> acc(static_cast<std::size_t>(rows * C));
  std::vector<std::int32_t> thr(static_cast<std::size_t>(C));
  std::vector<std::int32_t> inv(static_cast<std::size_t>(C));
  for (auto& v : acc)
    v = static_cast<std::int32_t>(rng.uniform_int(-64, 64));
  for (auto& v : thr) v = static_cast<std::int32_t>(rng.uniform_int(-8, 8));
  for (auto& v : inv) v = rng.bernoulli(0.5) ? 1 : 0;
  BitMatrix out(rows, C);
  const kn::KernelTable& table = kn::table_for(lvl);
  for (auto _ : state) {
    kn::ThreshCtx ctx{acc.data(), thr.data(), inv.data(),
                      tensor::span_of(out)};
    table.thresh(&ctx, 0, rows);
    benchmark::DoNotOptimize(out.storage().data());
  }
  state.SetItemsProcessed(state.iterations() * rows * C);
}

void kernel_im2row_tier(benchmark::State& state, kn::KernelLevel lvl) {
  const std::int64_t n = 1, h = 32, w = 32, c = 64, k = 3;
  const std::int64_t ho = h - k + 1, wo = w - k + 1;
  const auto src = random_signs(n * h * w * c, 16);
  const BitMatrix pixels = tensor::pack_matrix(src.data(), n * h * w, c);
  BitMatrix rows(n * ho * wo, k * k * c);
  const kn::KernelTable& table = kn::table_for(lvl);
  for (auto _ : state) {
    kn::Im2RowCtx ctx{tensor::span_of(pixels), tensor::span_of(rows),
                      h,  w,  c, k, ho, wo};
    table.im2row(&ctx, 0, n * ho * wo);
    benchmark::DoNotOptimize(rows.storage().data());
  }
  state.SetItemsProcessed(state.iterations() * n * ho * wo * k * k * c);
}

const bool kKernelTierRowsRegistered = [] {
  for (int i = 0; i < kn::kKernelLevelCount; ++i) {
    const auto lvl = static_cast<kn::KernelLevel>(i);
    if (!kn::level_available(lvl)) continue;
    const std::string tier = kn::kernel_level_name(lvl);
    benchmark::RegisterBenchmark(("BM_KernelGemmConv12/" + tier).c_str(),
                                 kernel_gemm_tier, lvl);
    benchmark::RegisterBenchmark(("BM_KernelThreshold/" + tier).c_str(),
                                 kernel_thresh_tier, lvl);
    benchmark::RegisterBenchmark(("BM_KernelIm2Row32x32/" + tier).c_str(),
                                 kernel_im2row_tier, lvl);
  }
  return true;
}();

void BM_PipelineRunNCnv(benchmark::State& state) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kNCnv, 13);
  xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
  deploy::StreamingPipeline pipeline(
      net, core::layer_specs(core::ArchitectureId::kNCnv));
  util::Rng rng(14);
  const auto attrs =
      facegen::sample_attributes(facegen::MaskClass::kCorrect, rng);
  const auto x = facegen::MaskedFaceDataset::image_to_tensor(
      facegen::render_face(attrs).image);
  for (auto _ : state) {
    const auto result = pipeline.run(x);
    benchmark::DoNotOptimize(result.logits.data());
  }
}
BENCHMARK(BM_PipelineRunNCnv);

}  // namespace
