// Micro-benchmarks (google-benchmark) for the kernels behind the system:
// float GEMM vs XNOR-popcount GEMM (the paper's core efficiency claim in
// software form), patch extraction, bit packing, face rendering, folding
// and whole-network inference.
#include <benchmark/benchmark.h>

#include "core/architecture.hpp"
#include "deploy/pipeline.hpp"
#include "facegen/dataset.hpp"
#include "facegen/renderer.hpp"
#include "tensor/bit_tensor.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2row.hpp"
#include "util/rng.hpp"
#include "xnor/engine.hpp"

namespace {

using namespace bcop;
using tensor::BitMatrix;
using tensor::Shape;
using tensor::Tensor;

std::vector<float> random_signs(std::int64_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.bernoulli(0.5) ? 1.f : -1.f;
  return v;
}

// conv1.2 of CNV as a GEMM: [784, 576] x [576, 64].
void BM_FloatGemmConv12(benchmark::State& state) {
  const std::int64_t M = 784, N = 64, K = 576;
  const auto a = random_signs(M * K, 1);
  const auto b = random_signs(K * N, 2);
  std::vector<float> c(static_cast<std::size_t>(M * N));
  for (auto _ : state) {
    tensor::gemm_nn(M, N, K, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * M * N * K);
}
BENCHMARK(BM_FloatGemmConv12);

void BM_XnorGemmConv12(benchmark::State& state) {
  const std::int64_t M = 784, N = 64, K = 576;
  const auto a = random_signs(M * K, 3);
  const auto b = random_signs(N * K, 4);
  const BitMatrix pa = tensor::pack_matrix(a.data(), M, K);
  const BitMatrix pb = tensor::pack_matrix(b.data(), N, K);
  std::vector<std::int32_t> c;
  for (auto _ : state) {
    tensor::binary_gemm(pa, pb, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * M * N * K);
}
BENCHMARK(BM_XnorGemmConv12);

void BM_PackMatrix(benchmark::State& state) {
  const std::int64_t M = 784, K = 576;
  const auto a = random_signs(M * K, 5);
  for (auto _ : state) {
    const BitMatrix p = tensor::pack_matrix(a.data(), M, K);
    benchmark::DoNotOptimize(p.storage().data());
  }
  state.SetItemsProcessed(state.iterations() * M * K);
}
BENCHMARK(BM_PackMatrix);

void BM_Im2Row32x32(benchmark::State& state) {
  util::Rng rng(6);
  Tensor x(Shape{1, 32, 32, 64});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  Tensor rows;
  for (auto _ : state) {
    tensor::im2row(x, 3, rows);
    benchmark::DoNotOptimize(rows.data());
  }
}
BENCHMARK(BM_Im2Row32x32);

void BM_RenderFace(benchmark::State& state) {
  util::Rng rng(7);
  for (auto _ : state) {
    const auto attrs = facegen::sample_attributes(
        static_cast<facegen::MaskClass>(state.iterations() % 4), rng);
    const auto r = facegen::render_face(attrs);
    benchmark::DoNotOptimize(r.image.data().data());
  }
}
BENCHMARK(BM_RenderFace);

void BM_FoldNCnv(benchmark::State& state) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kNCnv, 8);
  for (auto _ : state) {
    xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
    benchmark::DoNotOptimize(&net);
  }
}
BENCHMARK(BM_FoldNCnv);

void BM_XnorForwardNCnv(benchmark::State& state) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kNCnv, 9);
  const xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
  util::Rng rng(10);
  const auto attrs =
      facegen::sample_attributes(facegen::MaskClass::kCorrect, rng);
  const auto x = facegen::MaskedFaceDataset::image_to_tensor(
      facegen::render_face(attrs).image);
  for (auto _ : state) {
    const Tensor logits = net.forward(x);
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK(BM_XnorForwardNCnv);

void BM_FloatForwardNCnv(benchmark::State& state) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kNCnv, 11);
  util::Rng rng(12);
  const auto attrs =
      facegen::sample_attributes(facegen::MaskClass::kCorrect, rng);
  const auto x = facegen::MaskedFaceDataset::image_to_tensor(
      facegen::render_face(attrs).image);
  for (auto _ : state) {
    const Tensor logits = model.forward(x, false);
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK(BM_FloatForwardNCnv);

void BM_PipelineRunNCnv(benchmark::State& state) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kNCnv, 13);
  xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
  deploy::StreamingPipeline pipeline(
      net, core::layer_specs(core::ArchitectureId::kNCnv));
  util::Rng rng(14);
  const auto attrs =
      facegen::sample_attributes(facegen::MaskClass::kCorrect, rng);
  const auto x = facegen::MaskedFaceDataset::image_to_tensor(
      facegen::render_face(attrs).image);
  for (auto _ : state) {
    const auto result = pipeline.run(x);
    benchmark::DoNotOptimize(result.logits.data());
  }
}
BENCHMARK(BM_PipelineRunNCnv);

}  // namespace
