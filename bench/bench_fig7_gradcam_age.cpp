// Reproduces Fig. 7: Grad-CAM age generalization for correctly-masked
// subjects. The paper's reading: the smaller eyes of infants and the
// elderly do not stop Binary-CoP from focusing on the top edge of a
// correctly worn mask.
#include "bench_gradcam_common.hpp"

using namespace bcop;
using bench::base_subject;
using facegen::MaskClass;

int main() {
  auto infant = base_subject(MaskClass::kCorrect, 701);
  infant.age = facegen::AgeGroup::kInfant;
  auto adult = base_subject(MaskClass::kCorrect, 702);
  auto elderly = base_subject(MaskClass::kCorrect, 703);
  elderly.age = facegen::AgeGroup::kElderly;
  elderly.hair = {0.82f, 0.82f, 0.84f};

  return bench::run_gradcam_figure(
      "FIG7", "age generalization (infant / adult / elderly)",
      {{"infant", infant}, {"adult", adult}, {"elderly", elderly}});
}
