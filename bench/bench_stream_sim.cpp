// Dynamic pipeline behaviour: the analytical initiation interval is a
// steady-state number; this bench runs the frame-level stream simulator to
// show how the n-CNV pipeline fills, how FIFO depth trades blocking time
// for buffer space, and what happens when the camera is slower than the
// accelerator (the single-gate regime).
#include <cstdio>

#include "core/architecture.hpp"
#include "deploy/stream_sim.hpp"
#include "util/table.hpp"

using namespace bcop;

int main() {
  try {
    const auto perf = deploy::analyze_performance(
        core::layer_specs(core::ArchitectureId::kNCnv));

    std::printf("Frame-level stream simulation, n-CNV (analytic II = %lld "
                "cycles, fill latency = %lld cycles)\n\n",
                static_cast<long long>(perf.initiation_interval),
                static_cast<long long>(perf.pipeline_latency_cycles));

    util::AsciiTable t({"scenario", "measured II", "FPS", "mean latency",
                        "max latency", "bottleneck util."});
    struct Case {
      const char* name;
      deploy::StreamConfig cfg;
    };
    deploy::StreamConfig full;
    full.frames = 500;
    deploy::StreamConfig shallow = full;
    shallow.fifo_depth = 1;
    deploy::StreamConfig deep = full;
    deep.fifo_depth = 8;
    deploy::StreamConfig gate = full;
    gate.frames = 50;
    gate.arrival_interval = 40 * perf.initiation_interval;  // sparse subjects
    const Case cases[] = {{"pipeline full, FIFO depth 1", shallow},
                          {"pipeline full, FIFO depth 8", deep},
                          {"gate mode (sparse arrivals)", gate}};
    for (const auto& c : cases) {
      const auto rep = deploy::simulate_stream(perf, c.cfg);
      double bottleneck_util = 0;
      for (const auto& s : rep.stages)
        bottleneck_util = std::max(bottleneck_util, s.utilization);
      t.add_row({c.name, util::fmt(rep.measured_ii, 0),
                 util::fmt(rep.throughput_fps(), 0),
                 util::fmt(rep.mean_latency_cycles, 0) + " cyc",
                 std::to_string(rep.max_latency_cycles) + " cyc",
                 util::fmt(100 * bottleneck_util, 1) + "%"});
    }
    std::printf("%s", t.render().c_str());

    const auto rep = deploy::simulate_stream(perf, shallow);
    std::printf("\nPer-stage view (pipeline full, FIFO depth 1):\n");
    util::AsciiTable t2({"stage", "service cyc", "utilization", "blocked cyc"});
    for (const auto& s : rep.stages)
      t2.add_row({s.name, std::to_string(s.service_cycles),
                  util::fmt(100 * s.utilization, 1) + "%",
                  std::to_string(s.blocked_cycles)});
    std::printf("%s", t2.render().c_str());
    std::printf("\nThe measured II equals the analytic bottleneck for every "
                "FIFO depth >= 1 (deterministic service times), while "
                "shallow FIFOs convert queueing into upstream blocked "
                "cycles -- matching the paper's matched-throughput argument "
                "that a single under-dimensioned MVTU throttles the whole "
                "pipeline.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_stream_sim: %s\n", e.what());
    return 1;
  }
}
