// Serving-path throughput: batched bit-domain inference vs the single-image
// engine path, plus request-coalescing server latency percentiles.
//
// The paper's accelerator reaches its headline FPS (Table II) only with a
// full pipeline -- a stream of frames. This bench shows the CPU analogue:
// XnorNetwork::forward_batch amortizes packing and weight traffic over the
// batch, and the serve::BatchingServer turns independent requests into such
// batches under a bounded latency budget. Reported per prototype:
//   - single-image FPS (XnorNetwork::forward, the pre-batching baseline)
//   - batched FPS for batch sizes 1..32 (one XNOR GEMM per layer per batch)
//   - steady-state heap allocations per forward_batch call on the explicit
//     Workspace path (this binary links the operator-new interposer of
//     util/allocmeter.hpp; the engine's contract is exactly 0)
//   - server FPS with p50/p99 request latency
//   - the analytical accelerator FPS model for context
// A JSON artifact is written for trend tracking (default
// bench_artifacts/serving_throughput.json).
//
// Weights are untrained (timing is weight-independent); run with --full for
// larger sample counts. --check-allocs exits non-zero if any measured
// steady state allocates (the WORKSPACE_BENCH=1 stage of reproduce_all.sh).
//
// The obs registry is reset per prototype and snapshotted after the server
// phase, so the artifact carries the full per-stage telemetry (interpreter
// step/sub-phase histograms keyed by plan shape, server queue/batch/latency
// metrics) under a "metrics" key, and a per-stage breakdown table is
// printed. --metrics <path> additionally writes the final snapshot in
// Prometheus text format (the METRICS_BENCH=1 stage of reproduce_all.sh).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/architecture.hpp"
#include "core/predictor.hpp"
#include "deploy/performance.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/stage_profiler.hpp"
#include "serve/batcher.hpp"
#include "tensor/kernels/dispatch.hpp"
#include "util/allocmeter.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xnor/plan.hpp"

using namespace bcop;
using Clock = std::chrono::steady_clock;

#ifndef BCOP_GIT_SHA
#define BCOP_GIT_SHA "unknown"
#endif

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

tensor::Tensor random_images(std::int64_t n, util::Rng& rng) {
  tensor::Tensor batch(tensor::Shape{n, 32, 32, 3});
  for (std::int64_t i = 0; i < batch.numel(); ++i)
    batch[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return batch;
}

double percentile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[idx];
}

struct BatchPoint {
  std::int64_t batch = 0;
  double fps = 0;
  double allocs_per_call = 0;  // steady-state heap allocations, ws path
};

/// Per-stage interpreter breakdown from the arch's metric snapshot: every
/// bcop_exec_* histogram, with time shares computed against the summed
/// whole-replay (`_execute_ns`) series so step rows and the finer
/// im2row/gemm/thresholds sub-phase rows are both readable.
void print_stage_breakdown(const bcop::obs::MetricsSnapshot& snap) {
  double execute_total_ns = 0;
  for (const auto& h : snap.histograms)
    if (h.name.find("bcop_exec_") == 0 &&
        h.name.find("_execute_ns") != std::string::npos)
      execute_total_ns += static_cast<double>(h.sum);
  util::AsciiTable t({"stage metric", "count", "p50 us", "p99 us",
                      "total ms", "share"});
  for (const auto& h : snap.histograms) {
    if (h.name.find("bcop_exec_") != 0 || h.count == 0) continue;
    const double share = execute_total_ns > 0
                             ? static_cast<double>(h.sum) / execute_total_ns
                             : 0;
    t.add_row({h.name, std::to_string(h.count), util::fmt(h.p50 * 1e-3, 1),
               util::fmt(h.p99 * 1e-3, 1),
               util::fmt(static_cast<double>(h.sum) * 1e-6, 2),
               util::fmt(share * 100.0, 1) + "%"});
  }
  std::printf("%s", t.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv, {"full", "check-allocs"});
    const bool full = args.get_flag("full");
    const bool check_allocs = args.get_flag("check-allocs");
    const std::string metrics_path = args.get("metrics", "");
    bool steady_state_allocated = false;
    const std::int64_t images_per_size = full ? 256 : 64;
    const std::int64_t server_requests = full ? 256 : 64;
    const std::string out_path =
        args.get("out", "bench_artifacts/serving_throughput.json");

    std::filesystem::create_directories(
        std::filesystem::path(out_path).parent_path());
    // The tier every plan in this run freezes: override/env/CPUID-resolved
    // once here, recorded in the artifact so FPS trend lines are
    // attributable to the kernel tier that produced them.
    const char* kernel_level = tensor::kernels::kernel_level_name(
        tensor::kernels::active_level());

    std::FILE* json = std::fopen(out_path.c_str(), "w");
    if (!json) throw std::runtime_error("cannot write " + out_path);
    std::fprintf(json,
                 "{\n  \"full\": %s,\n  \"kernel_level\": \"%s\",\n"
                 "  \"git_sha\": \"%s\",\n  \"archs\": [",
                 full ? "true" : "false", kernel_level, BCOP_GIT_SHA);

    std::printf("Serving-path throughput (batched bit-domain engine vs "
                "single-image path)\nkernel dispatch tier: %s\n%s\n\n",
                kernel_level,
                full ? "full sample counts" : "quick mode (pass --full for larger samples)");
    util::AsciiTable t({"Config", "single FPS", "batch", "batched FPS",
                        "speedup", "allocs/call", "server FPS", "p50 ms",
                        "p99 ms", "accel FPS (model)"});

    const core::ArchitectureId archs[] = {core::ArchitectureId::kCnv,
                                          core::ArchitectureId::kNCnv,
                                          core::ArchitectureId::kMicroCnv};
    obs::StageProfiler::global().set_enabled(true);
    std::vector<std::pair<std::string, obs::MetricsSnapshot>> snapshots;
    bool first_arch = true;
    for (const auto arch : archs) {
      // Plan-shape metric keys collide across prototypes (all serve
      // 32x32x3), so the registry is zeroed per arch and snapshotted at
      // the end of the arch's phase.
      obs::Registry::global().reset_values();
      const core::Predictor predictor(core::build_bnn(arch, 7));
      const xnor::XnorNetwork& net = predictor.network();
      util::Rng rng(0xbeef);

      // Baseline: one image at a time through the single-image path.
      const tensor::Tensor warmup = random_images(1, rng);
      net.forward(warmup);
      net.forward_batch(warmup);
      const std::int64_t single_iters = std::max<std::int64_t>(
          8, images_per_size / 4);
      const auto t0 = Clock::now();
      for (std::int64_t i = 0; i < single_iters; ++i) net.forward(warmup);
      const double single_fps =
          static_cast<double>(single_iters) / seconds_since(t0);

      // Batched path across batch sizes. FPS is timed on the convenience
      // path (comparable across releases); the allocation count is measured
      // on the explicit Workspace path, whose steady-state contract is 0.
      std::vector<BatchPoint> points;
      xnor::Workspace ws;
      tensor::Tensor out;
      for (const std::int64_t b : {1, 2, 4, 8, 16, 32}) {
        const tensor::Tensor batch = random_images(b, rng);
        const std::int64_t reps =
            std::max<std::int64_t>(1, images_per_size / b);
        const auto tb = Clock::now();
        for (std::int64_t r = 0; r < reps; ++r) net.forward_batch(batch);
        const double fps = static_cast<double>(reps * b) / seconds_since(tb);

        net.forward_batch(batch, ws, out);  // warm plan + arena + out
        constexpr std::int64_t kAllocReps = 16;
        const std::uint64_t mark = util::alloc_count();
        for (std::int64_t r = 0; r < kAllocReps; ++r)
          net.forward_batch(batch, ws, out);
        const double allocs =
            static_cast<double>(util::alloc_count() - mark) / kAllocReps;
        if (allocs > 0) steady_state_allocated = true;
        points.push_back({b, fps, allocs});
      }

      // Coalescing server: back-to-back submissions, per-request latency.
      serve::BatcherConfig cfg;
      cfg.workers = 2;
      cfg.max_batch = 16;
      cfg.max_latency = std::chrono::microseconds(2000);
      double server_fps = 0, p50 = 0, p99 = 0;
      std::int64_t server_batches = 0;
      {
        serve::BatchingServer server(predictor, cfg);
        std::vector<std::future<core::Predictor::Result>> futures;
        std::vector<Clock::time_point> submitted;
        std::vector<double> latencies_ms;
        const auto ts = Clock::now();
        for (std::int64_t i = 0; i < server_requests; ++i) {
          submitted.push_back(Clock::now());
          futures.push_back(
              server.submit(warmup.reshaped(tensor::Shape{32, 32, 3})));
        }
        for (std::int64_t i = 0; i < server_requests; ++i) {
          futures[static_cast<std::size_t>(i)].get();
          latencies_ms.push_back(
              seconds_since(submitted[static_cast<std::size_t>(i)]) * 1e3);
        }
        server_fps = static_cast<double>(server_requests) / seconds_since(ts);
        p50 = percentile(latencies_ms, 0.50);
        p99 = percentile(latencies_ms, 0.99);
        server_batches = server.stats().batches;
      }

      const double accel_fps =
          deploy::analyze_performance(core::layer_specs(arch)).fps();
      snapshots.emplace_back(core::arch_name(arch),
                             obs::Registry::global().snapshot());

      std::fprintf(json, "%s\n    {\"name\": \"%s\", \"single_image_fps\": %.1f,",
                   first_arch ? "" : ",", core::arch_name(arch),
                   single_fps);
      std::fprintf(json, "\n     \"batched\": [");
      for (std::size_t i = 0; i < points.size(); ++i)
        std::fprintf(json,
                     "%s{\"batch\": %lld, \"fps\": %.1f, "
                     "\"allocs_per_call\": %.2f}",
                     i ? ", " : "",
                     static_cast<long long>(points[i].batch), points[i].fps,
                     points[i].allocs_per_call);
      std::fprintf(json,
                   "],\n     \"server\": {\"workers\": %u, \"max_batch\": %lld, "
                   "\"max_latency_us\": %lld, \"fps\": %.1f, \"p50_ms\": %.3f, "
                   "\"p99_ms\": %.3f, \"batches\": %lld},\n"
                   "     \"accelerator_model_fps\": %.1f,\n"
                   "     \"metrics\": %s}",
                   cfg.workers, static_cast<long long>(cfg.max_batch),
                   static_cast<long long>(cfg.max_latency.count()), server_fps,
                   p50, p99, static_cast<long long>(server_batches), accel_fps,
                   obs::export_json(snapshots.back().second).c_str());
      first_arch = false;

      for (std::size_t i = 0; i < points.size(); ++i)
        t.add_row({i == 0 ? core::arch_name(arch) : "",
                   i == 0 ? util::fmt(single_fps, 1) : "",
                   std::to_string(points[i].batch), util::fmt(points[i].fps, 1),
                   util::fmt(points[i].fps / single_fps, 2) + "x",
                   util::fmt(points[i].allocs_per_call, 2),
                   i == 0 ? util::fmt(server_fps, 1) : "",
                   i == 0 ? util::fmt(p50, 2) : "",
                   i == 0 ? util::fmt(p99, 2) : "",
                   i == 0 ? util::fmt(accel_fps, 0) : ""});
    }

    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);

    std::printf("%s", t.render().c_str());
    std::printf("\nspeedup = batched FPS / single-image FPS (same host, same "
                "thread budget).\nallocs/call = steady-state heap "
                "allocations per forward_batch on the Workspace path "
                "(contract: 0).\nartifact: %s\n", out_path.c_str());

    for (const auto& [name, snap] : snapshots) {
      std::printf("\nper-stage interpreter breakdown: %s\n", name.c_str());
      print_stage_breakdown(snap);
    }
    if (!metrics_path.empty()) {
      const auto parent = std::filesystem::path(metrics_path).parent_path();
      if (!parent.empty()) std::filesystem::create_directories(parent);
      std::FILE* prom = std::fopen(metrics_path.c_str(), "w");
      if (!prom) throw std::runtime_error("cannot write " + metrics_path);
      const std::string text =
          bcop::obs::export_prometheus(snapshots.back().second);
      std::fwrite(text.data(), 1, text.size(), prom);
      std::fclose(prom);
      std::printf("\nPrometheus snapshot (%s, last prototype): %s\n",
                  snapshots.back().first.c_str(), metrics_path.c_str());
    }
    if (check_allocs && steady_state_allocated) {
      std::fprintf(stderr, "bench_serving_throughput: --check-allocs FAILED: "
                           "steady state performed heap allocations\n");
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serving_throughput: %s\n", e.what());
    return 1;
  }
}
