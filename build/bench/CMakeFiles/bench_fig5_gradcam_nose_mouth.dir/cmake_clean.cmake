file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_gradcam_nose_mouth.dir/bench_fig5_gradcam_nose_mouth.cpp.o"
  "CMakeFiles/bench_fig5_gradcam_nose_mouth.dir/bench_fig5_gradcam_nose_mouth.cpp.o.d"
  "bench_fig5_gradcam_nose_mouth"
  "bench_fig5_gradcam_nose_mouth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_gradcam_nose_mouth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
