# Empty compiler generated dependencies file for bench_fig5_gradcam_nose_mouth.
# This may be replaced when dependencies are built.
