file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_gradcam_correct.dir/bench_fig3_gradcam_correct.cpp.o"
  "CMakeFiles/bench_fig3_gradcam_correct.dir/bench_fig3_gradcam_correct.cpp.o.d"
  "bench_fig3_gradcam_correct"
  "bench_fig3_gradcam_correct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_gradcam_correct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
