# Empty compiler generated dependencies file for bench_fig3_gradcam_correct.
# This may be replaced when dependencies are built.
