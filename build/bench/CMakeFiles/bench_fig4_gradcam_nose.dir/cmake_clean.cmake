file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_gradcam_nose.dir/bench_fig4_gradcam_nose.cpp.o"
  "CMakeFiles/bench_fig4_gradcam_nose.dir/bench_fig4_gradcam_nose.cpp.o.d"
  "bench_fig4_gradcam_nose"
  "bench_fig4_gradcam_nose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_gradcam_nose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
