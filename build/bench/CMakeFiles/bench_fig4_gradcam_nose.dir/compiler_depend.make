# Empty compiler generated dependencies file for bench_fig4_gradcam_nose.
# This may be replaced when dependencies are built.
