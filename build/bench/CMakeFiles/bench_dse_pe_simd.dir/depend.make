# Empty dependencies file for bench_dse_pe_simd.
# This may be replaced when dependencies are built.
