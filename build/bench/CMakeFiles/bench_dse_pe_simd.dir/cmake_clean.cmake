file(REMOVE_RECURSE
  "CMakeFiles/bench_dse_pe_simd.dir/bench_dse_pe_simd.cpp.o"
  "CMakeFiles/bench_dse_pe_simd.dir/bench_dse_pe_simd.cpp.o.d"
  "bench_dse_pe_simd"
  "bench_dse_pe_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dse_pe_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
