# Empty dependencies file for bench_fig7_gradcam_age.
# This may be replaced when dependencies are built.
