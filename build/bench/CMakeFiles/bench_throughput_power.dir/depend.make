# Empty dependencies file for bench_throughput_power.
# This may be replaced when dependencies are built.
