file(REMOVE_RECURSE
  "CMakeFiles/bench_throughput_power.dir/bench_throughput_power.cpp.o"
  "CMakeFiles/bench_throughput_power.dir/bench_throughput_power.cpp.o.d"
  "bench_throughput_power"
  "bench_throughput_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_throughput_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
