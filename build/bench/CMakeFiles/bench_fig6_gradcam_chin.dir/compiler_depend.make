# Empty compiler generated dependencies file for bench_fig6_gradcam_chin.
# This may be replaced when dependencies are built.
