file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_gradcam_chin.dir/bench_fig6_gradcam_chin.cpp.o"
  "CMakeFiles/bench_fig6_gradcam_chin.dir/bench_fig6_gradcam_chin.cpp.o.d"
  "bench_fig6_gradcam_chin"
  "bench_fig6_gradcam_chin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_gradcam_chin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
