# Empty dependencies file for bench_fig2_confusion.
# This may be replaced when dependencies are built.
