# Empty compiler generated dependencies file for bench_fig9_gradcam_manipulation.
# This may be replaced when dependencies are built.
