file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_gradcam_manipulation.dir/bench_fig9_gradcam_manipulation.cpp.o"
  "CMakeFiles/bench_fig9_gradcam_manipulation.dir/bench_fig9_gradcam_manipulation.cpp.o.d"
  "bench_fig9_gradcam_manipulation"
  "bench_fig9_gradcam_manipulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_gradcam_manipulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
