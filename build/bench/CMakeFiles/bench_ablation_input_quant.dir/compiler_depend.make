# Empty compiler generated dependencies file for bench_ablation_input_quant.
# This may be replaced when dependencies are built.
