file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_hw_dse.dir/bench_table2_hw_dse.cpp.o"
  "CMakeFiles/bench_table2_hw_dse.dir/bench_table2_hw_dse.cpp.o.d"
  "bench_table2_hw_dse"
  "bench_table2_hw_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hw_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
