file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_gradcam_hair.dir/bench_fig8_gradcam_hair.cpp.o"
  "CMakeFiles/bench_fig8_gradcam_hair.dir/bench_fig8_gradcam_hair.cpp.o.d"
  "bench_fig8_gradcam_hair"
  "bench_fig8_gradcam_hair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_gradcam_hair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
