# Empty compiler generated dependencies file for bench_fig8_gradcam_hair.
# This may be replaced when dependencies are built.
