# Empty dependencies file for bench_ablation_pool_order.
# This may be replaced when dependencies are built.
