file(REMOVE_RECURSE
  "CMakeFiles/bench_stream_sim.dir/bench_stream_sim.cpp.o"
  "CMakeFiles/bench_stream_sim.dir/bench_stream_sim.cpp.o.d"
  "bench_stream_sim"
  "bench_stream_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stream_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
