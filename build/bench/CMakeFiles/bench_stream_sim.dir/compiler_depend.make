# Empty compiler generated dependencies file for bench_stream_sim.
# This may be replaced when dependencies are built.
