# Empty compiler generated dependencies file for bcop_core.
# This may be replaced when dependencies are built.
