file(REMOVE_RECURSE
  "libbcop_core.a"
)
