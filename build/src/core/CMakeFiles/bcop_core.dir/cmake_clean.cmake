file(REMOVE_RECURSE
  "CMakeFiles/bcop_core.dir/architecture.cpp.o"
  "CMakeFiles/bcop_core.dir/architecture.cpp.o.d"
  "CMakeFiles/bcop_core.dir/evaluator.cpp.o"
  "CMakeFiles/bcop_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/bcop_core.dir/predictor.cpp.o"
  "CMakeFiles/bcop_core.dir/predictor.cpp.o.d"
  "CMakeFiles/bcop_core.dir/trainer.cpp.o"
  "CMakeFiles/bcop_core.dir/trainer.cpp.o.d"
  "libbcop_core.a"
  "libbcop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
