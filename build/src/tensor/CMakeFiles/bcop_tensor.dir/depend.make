# Empty dependencies file for bcop_tensor.
# This may be replaced when dependencies are built.
