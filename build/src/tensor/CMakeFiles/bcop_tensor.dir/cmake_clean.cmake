file(REMOVE_RECURSE
  "CMakeFiles/bcop_tensor.dir/bit_tensor.cpp.o"
  "CMakeFiles/bcop_tensor.dir/bit_tensor.cpp.o.d"
  "CMakeFiles/bcop_tensor.dir/gemm.cpp.o"
  "CMakeFiles/bcop_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/bcop_tensor.dir/im2row.cpp.o"
  "CMakeFiles/bcop_tensor.dir/im2row.cpp.o.d"
  "CMakeFiles/bcop_tensor.dir/ops.cpp.o"
  "CMakeFiles/bcop_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/bcop_tensor.dir/tensor.cpp.o"
  "CMakeFiles/bcop_tensor.dir/tensor.cpp.o.d"
  "libbcop_tensor.a"
  "libbcop_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcop_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
