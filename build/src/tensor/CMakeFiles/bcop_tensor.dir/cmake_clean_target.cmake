file(REMOVE_RECURSE
  "libbcop_tensor.a"
)
