# Empty dependencies file for bcop_parallel.
# This may be replaced when dependencies are built.
