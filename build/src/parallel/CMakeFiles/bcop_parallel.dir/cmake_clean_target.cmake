file(REMOVE_RECURSE
  "libbcop_parallel.a"
)
