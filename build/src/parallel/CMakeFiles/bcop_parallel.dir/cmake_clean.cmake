file(REMOVE_RECURSE
  "CMakeFiles/bcop_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/bcop_parallel.dir/thread_pool.cpp.o.d"
  "libbcop_parallel.a"
  "libbcop_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcop_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
