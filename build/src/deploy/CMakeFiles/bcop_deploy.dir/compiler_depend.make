# Empty compiler generated dependencies file for bcop_deploy.
# This may be replaced when dependencies are built.
