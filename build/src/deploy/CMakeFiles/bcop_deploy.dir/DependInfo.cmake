
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deploy/dse.cpp" "src/deploy/CMakeFiles/bcop_deploy.dir/dse.cpp.o" "gcc" "src/deploy/CMakeFiles/bcop_deploy.dir/dse.cpp.o.d"
  "/root/repo/src/deploy/mvtu.cpp" "src/deploy/CMakeFiles/bcop_deploy.dir/mvtu.cpp.o" "gcc" "src/deploy/CMakeFiles/bcop_deploy.dir/mvtu.cpp.o.d"
  "/root/repo/src/deploy/performance.cpp" "src/deploy/CMakeFiles/bcop_deploy.dir/performance.cpp.o" "gcc" "src/deploy/CMakeFiles/bcop_deploy.dir/performance.cpp.o.d"
  "/root/repo/src/deploy/pipeline.cpp" "src/deploy/CMakeFiles/bcop_deploy.dir/pipeline.cpp.o" "gcc" "src/deploy/CMakeFiles/bcop_deploy.dir/pipeline.cpp.o.d"
  "/root/repo/src/deploy/power.cpp" "src/deploy/CMakeFiles/bcop_deploy.dir/power.cpp.o" "gcc" "src/deploy/CMakeFiles/bcop_deploy.dir/power.cpp.o.d"
  "/root/repo/src/deploy/resource.cpp" "src/deploy/CMakeFiles/bcop_deploy.dir/resource.cpp.o" "gcc" "src/deploy/CMakeFiles/bcop_deploy.dir/resource.cpp.o.d"
  "/root/repo/src/deploy/stream_sim.cpp" "src/deploy/CMakeFiles/bcop_deploy.dir/stream_sim.cpp.o" "gcc" "src/deploy/CMakeFiles/bcop_deploy.dir/stream_sim.cpp.o.d"
  "/root/repo/src/deploy/swu.cpp" "src/deploy/CMakeFiles/bcop_deploy.dir/swu.cpp.o" "gcc" "src/deploy/CMakeFiles/bcop_deploy.dir/swu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bcop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xnor/CMakeFiles/bcop_xnor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/bcop_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/facegen/CMakeFiles/bcop_facegen.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/bcop_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/bcop_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bcop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
