file(REMOVE_RECURSE
  "libbcop_deploy.a"
)
