file(REMOVE_RECURSE
  "CMakeFiles/bcop_deploy.dir/dse.cpp.o"
  "CMakeFiles/bcop_deploy.dir/dse.cpp.o.d"
  "CMakeFiles/bcop_deploy.dir/mvtu.cpp.o"
  "CMakeFiles/bcop_deploy.dir/mvtu.cpp.o.d"
  "CMakeFiles/bcop_deploy.dir/performance.cpp.o"
  "CMakeFiles/bcop_deploy.dir/performance.cpp.o.d"
  "CMakeFiles/bcop_deploy.dir/pipeline.cpp.o"
  "CMakeFiles/bcop_deploy.dir/pipeline.cpp.o.d"
  "CMakeFiles/bcop_deploy.dir/power.cpp.o"
  "CMakeFiles/bcop_deploy.dir/power.cpp.o.d"
  "CMakeFiles/bcop_deploy.dir/resource.cpp.o"
  "CMakeFiles/bcop_deploy.dir/resource.cpp.o.d"
  "CMakeFiles/bcop_deploy.dir/stream_sim.cpp.o"
  "CMakeFiles/bcop_deploy.dir/stream_sim.cpp.o.d"
  "CMakeFiles/bcop_deploy.dir/swu.cpp.o"
  "CMakeFiles/bcop_deploy.dir/swu.cpp.o.d"
  "libbcop_deploy.a"
  "libbcop_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcop_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
