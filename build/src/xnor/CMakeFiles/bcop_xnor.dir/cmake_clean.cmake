file(REMOVE_RECURSE
  "CMakeFiles/bcop_xnor.dir/bitstream.cpp.o"
  "CMakeFiles/bcop_xnor.dir/bitstream.cpp.o.d"
  "CMakeFiles/bcop_xnor.dir/engine.cpp.o"
  "CMakeFiles/bcop_xnor.dir/engine.cpp.o.d"
  "CMakeFiles/bcop_xnor.dir/folding.cpp.o"
  "CMakeFiles/bcop_xnor.dir/folding.cpp.o.d"
  "libbcop_xnor.a"
  "libbcop_xnor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcop_xnor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
