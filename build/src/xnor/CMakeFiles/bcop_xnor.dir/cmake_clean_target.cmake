file(REMOVE_RECURSE
  "libbcop_xnor.a"
)
