# Empty dependencies file for bcop_xnor.
# This may be replaced when dependencies are built.
