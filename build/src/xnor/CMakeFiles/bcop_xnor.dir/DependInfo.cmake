
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xnor/bitstream.cpp" "src/xnor/CMakeFiles/bcop_xnor.dir/bitstream.cpp.o" "gcc" "src/xnor/CMakeFiles/bcop_xnor.dir/bitstream.cpp.o.d"
  "/root/repo/src/xnor/engine.cpp" "src/xnor/CMakeFiles/bcop_xnor.dir/engine.cpp.o" "gcc" "src/xnor/CMakeFiles/bcop_xnor.dir/engine.cpp.o.d"
  "/root/repo/src/xnor/folding.cpp" "src/xnor/CMakeFiles/bcop_xnor.dir/folding.cpp.o" "gcc" "src/xnor/CMakeFiles/bcop_xnor.dir/folding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/bcop_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/bcop_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/bcop_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bcop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
