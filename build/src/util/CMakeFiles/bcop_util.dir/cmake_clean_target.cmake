file(REMOVE_RECURSE
  "libbcop_util.a"
)
