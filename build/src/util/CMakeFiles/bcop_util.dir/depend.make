# Empty dependencies file for bcop_util.
# This may be replaced when dependencies are built.
