file(REMOVE_RECURSE
  "CMakeFiles/bcop_util.dir/args.cpp.o"
  "CMakeFiles/bcop_util.dir/args.cpp.o.d"
  "CMakeFiles/bcop_util.dir/csv.cpp.o"
  "CMakeFiles/bcop_util.dir/csv.cpp.o.d"
  "CMakeFiles/bcop_util.dir/image.cpp.o"
  "CMakeFiles/bcop_util.dir/image.cpp.o.d"
  "CMakeFiles/bcop_util.dir/log.cpp.o"
  "CMakeFiles/bcop_util.dir/log.cpp.o.d"
  "CMakeFiles/bcop_util.dir/rng.cpp.o"
  "CMakeFiles/bcop_util.dir/rng.cpp.o.d"
  "CMakeFiles/bcop_util.dir/serialize.cpp.o"
  "CMakeFiles/bcop_util.dir/serialize.cpp.o.d"
  "CMakeFiles/bcop_util.dir/table.cpp.o"
  "CMakeFiles/bcop_util.dir/table.cpp.o.d"
  "libbcop_util.a"
  "libbcop_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcop_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
