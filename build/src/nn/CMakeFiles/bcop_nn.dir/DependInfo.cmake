
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/bcop_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/bcop_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/binary_conv2d.cpp" "src/nn/CMakeFiles/bcop_nn.dir/binary_conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/bcop_nn.dir/binary_conv2d.cpp.o.d"
  "/root/repo/src/nn/binary_dense.cpp" "src/nn/CMakeFiles/bcop_nn.dir/binary_dense.cpp.o" "gcc" "src/nn/CMakeFiles/bcop_nn.dir/binary_dense.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/bcop_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/bcop_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/bcop_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/bcop_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/flatten.cpp" "src/nn/CMakeFiles/bcop_nn.dir/flatten.cpp.o" "gcc" "src/nn/CMakeFiles/bcop_nn.dir/flatten.cpp.o.d"
  "/root/repo/src/nn/hinge_loss.cpp" "src/nn/CMakeFiles/bcop_nn.dir/hinge_loss.cpp.o" "gcc" "src/nn/CMakeFiles/bcop_nn.dir/hinge_loss.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/bcop_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/bcop_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/maxpool.cpp" "src/nn/CMakeFiles/bcop_nn.dir/maxpool.cpp.o" "gcc" "src/nn/CMakeFiles/bcop_nn.dir/maxpool.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/bcop_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/bcop_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/scaled_binary_conv2d.cpp" "src/nn/CMakeFiles/bcop_nn.dir/scaled_binary_conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/bcop_nn.dir/scaled_binary_conv2d.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/bcop_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/bcop_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/sign_activation.cpp" "src/nn/CMakeFiles/bcop_nn.dir/sign_activation.cpp.o" "gcc" "src/nn/CMakeFiles/bcop_nn.dir/sign_activation.cpp.o.d"
  "/root/repo/src/nn/softmax_xent.cpp" "src/nn/CMakeFiles/bcop_nn.dir/softmax_xent.cpp.o" "gcc" "src/nn/CMakeFiles/bcop_nn.dir/softmax_xent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/bcop_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bcop_util.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/bcop_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
