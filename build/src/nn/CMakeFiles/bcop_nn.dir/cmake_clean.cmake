file(REMOVE_RECURSE
  "CMakeFiles/bcop_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/bcop_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/bcop_nn.dir/binary_conv2d.cpp.o"
  "CMakeFiles/bcop_nn.dir/binary_conv2d.cpp.o.d"
  "CMakeFiles/bcop_nn.dir/binary_dense.cpp.o"
  "CMakeFiles/bcop_nn.dir/binary_dense.cpp.o.d"
  "CMakeFiles/bcop_nn.dir/conv2d.cpp.o"
  "CMakeFiles/bcop_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/bcop_nn.dir/dense.cpp.o"
  "CMakeFiles/bcop_nn.dir/dense.cpp.o.d"
  "CMakeFiles/bcop_nn.dir/flatten.cpp.o"
  "CMakeFiles/bcop_nn.dir/flatten.cpp.o.d"
  "CMakeFiles/bcop_nn.dir/hinge_loss.cpp.o"
  "CMakeFiles/bcop_nn.dir/hinge_loss.cpp.o.d"
  "CMakeFiles/bcop_nn.dir/init.cpp.o"
  "CMakeFiles/bcop_nn.dir/init.cpp.o.d"
  "CMakeFiles/bcop_nn.dir/maxpool.cpp.o"
  "CMakeFiles/bcop_nn.dir/maxpool.cpp.o.d"
  "CMakeFiles/bcop_nn.dir/optimizer.cpp.o"
  "CMakeFiles/bcop_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/bcop_nn.dir/scaled_binary_conv2d.cpp.o"
  "CMakeFiles/bcop_nn.dir/scaled_binary_conv2d.cpp.o.d"
  "CMakeFiles/bcop_nn.dir/sequential.cpp.o"
  "CMakeFiles/bcop_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/bcop_nn.dir/sign_activation.cpp.o"
  "CMakeFiles/bcop_nn.dir/sign_activation.cpp.o.d"
  "CMakeFiles/bcop_nn.dir/softmax_xent.cpp.o"
  "CMakeFiles/bcop_nn.dir/softmax_xent.cpp.o.d"
  "libbcop_nn.a"
  "libbcop_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcop_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
