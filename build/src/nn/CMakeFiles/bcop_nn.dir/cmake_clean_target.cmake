file(REMOVE_RECURSE
  "libbcop_nn.a"
)
