# Empty compiler generated dependencies file for bcop_nn.
# This may be replaced when dependencies are built.
