
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/facegen/attributes.cpp" "src/facegen/CMakeFiles/bcop_facegen.dir/attributes.cpp.o" "gcc" "src/facegen/CMakeFiles/bcop_facegen.dir/attributes.cpp.o.d"
  "/root/repo/src/facegen/augment.cpp" "src/facegen/CMakeFiles/bcop_facegen.dir/augment.cpp.o" "gcc" "src/facegen/CMakeFiles/bcop_facegen.dir/augment.cpp.o.d"
  "/root/repo/src/facegen/crowd.cpp" "src/facegen/CMakeFiles/bcop_facegen.dir/crowd.cpp.o" "gcc" "src/facegen/CMakeFiles/bcop_facegen.dir/crowd.cpp.o.d"
  "/root/repo/src/facegen/dataset.cpp" "src/facegen/CMakeFiles/bcop_facegen.dir/dataset.cpp.o" "gcc" "src/facegen/CMakeFiles/bcop_facegen.dir/dataset.cpp.o.d"
  "/root/repo/src/facegen/renderer.cpp" "src/facegen/CMakeFiles/bcop_facegen.dir/renderer.cpp.o" "gcc" "src/facegen/CMakeFiles/bcop_facegen.dir/renderer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bcop_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/bcop_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/bcop_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
