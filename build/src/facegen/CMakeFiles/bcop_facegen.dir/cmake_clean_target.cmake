file(REMOVE_RECURSE
  "libbcop_facegen.a"
)
