file(REMOVE_RECURSE
  "CMakeFiles/bcop_facegen.dir/attributes.cpp.o"
  "CMakeFiles/bcop_facegen.dir/attributes.cpp.o.d"
  "CMakeFiles/bcop_facegen.dir/augment.cpp.o"
  "CMakeFiles/bcop_facegen.dir/augment.cpp.o.d"
  "CMakeFiles/bcop_facegen.dir/crowd.cpp.o"
  "CMakeFiles/bcop_facegen.dir/crowd.cpp.o.d"
  "CMakeFiles/bcop_facegen.dir/dataset.cpp.o"
  "CMakeFiles/bcop_facegen.dir/dataset.cpp.o.d"
  "CMakeFiles/bcop_facegen.dir/renderer.cpp.o"
  "CMakeFiles/bcop_facegen.dir/renderer.cpp.o.d"
  "libbcop_facegen.a"
  "libbcop_facegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcop_facegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
