# Empty dependencies file for bcop_facegen.
# This may be replaced when dependencies are built.
