file(REMOVE_RECURSE
  "libbcop_gradcam.a"
)
