file(REMOVE_RECURSE
  "CMakeFiles/bcop_gradcam.dir/attention.cpp.o"
  "CMakeFiles/bcop_gradcam.dir/attention.cpp.o.d"
  "CMakeFiles/bcop_gradcam.dir/gradcam.cpp.o"
  "CMakeFiles/bcop_gradcam.dir/gradcam.cpp.o.d"
  "CMakeFiles/bcop_gradcam.dir/overlay.cpp.o"
  "CMakeFiles/bcop_gradcam.dir/overlay.cpp.o.d"
  "libbcop_gradcam.a"
  "libbcop_gradcam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcop_gradcam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
