# Empty compiler generated dependencies file for bcop_gradcam.
# This may be replaced when dependencies are built.
