file(REMOVE_RECURSE
  "CMakeFiles/dataset_gallery.dir/dataset_gallery.cpp.o"
  "CMakeFiles/dataset_gallery.dir/dataset_gallery.cpp.o.d"
  "dataset_gallery"
  "dataset_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
