# Empty dependencies file for dataset_gallery.
# This may be replaced when dependencies are built.
