file(REMOVE_RECURSE
  "CMakeFiles/gradcam_explorer.dir/gradcam_explorer.cpp.o"
  "CMakeFiles/gradcam_explorer.dir/gradcam_explorer.cpp.o.d"
  "gradcam_explorer"
  "gradcam_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradcam_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
