# Empty dependencies file for gradcam_explorer.
# This may be replaced when dependencies are built.
