file(REMOVE_RECURSE
  "CMakeFiles/bitstream_deploy.dir/bitstream_deploy.cpp.o"
  "CMakeFiles/bitstream_deploy.dir/bitstream_deploy.cpp.o.d"
  "bitstream_deploy"
  "bitstream_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitstream_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
