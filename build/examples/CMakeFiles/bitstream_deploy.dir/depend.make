# Empty dependencies file for bitstream_deploy.
# This may be replaced when dependencies are built.
