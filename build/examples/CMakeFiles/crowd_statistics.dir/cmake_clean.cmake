file(REMOVE_RECURSE
  "CMakeFiles/crowd_statistics.dir/crowd_statistics.cpp.o"
  "CMakeFiles/crowd_statistics.dir/crowd_statistics.cpp.o.d"
  "crowd_statistics"
  "crowd_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
