# Empty compiler generated dependencies file for crowd_statistics.
# This may be replaced when dependencies are built.
