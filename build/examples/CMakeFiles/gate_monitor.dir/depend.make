# Empty dependencies file for gate_monitor.
# This may be replaced when dependencies are built.
