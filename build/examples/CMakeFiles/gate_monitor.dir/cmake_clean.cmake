file(REMOVE_RECURSE
  "CMakeFiles/gate_monitor.dir/gate_monitor.cpp.o"
  "CMakeFiles/gate_monitor.dir/gate_monitor.cpp.o.d"
  "gate_monitor"
  "gate_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
