file(REMOVE_RECURSE
  "CMakeFiles/train_binarycop.dir/train_binarycop.cpp.o"
  "CMakeFiles/train_binarycop.dir/train_binarycop.cpp.o.d"
  "train_binarycop"
  "train_binarycop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_binarycop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
