# Empty dependencies file for train_binarycop.
# This may be replaced when dependencies are built.
