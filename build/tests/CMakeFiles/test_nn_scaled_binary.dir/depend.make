# Empty dependencies file for test_nn_scaled_binary.
# This may be replaced when dependencies are built.
