file(REMOVE_RECURSE
  "CMakeFiles/test_bit_tensor.dir/test_bit_tensor.cpp.o"
  "CMakeFiles/test_bit_tensor.dir/test_bit_tensor.cpp.o.d"
  "test_bit_tensor"
  "test_bit_tensor.pdb"
  "test_bit_tensor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bit_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
