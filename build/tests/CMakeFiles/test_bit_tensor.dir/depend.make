# Empty dependencies file for test_bit_tensor.
# This may be replaced when dependencies are built.
