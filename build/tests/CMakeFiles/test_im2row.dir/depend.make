# Empty dependencies file for test_im2row.
# This may be replaced when dependencies are built.
