file(REMOVE_RECURSE
  "CMakeFiles/test_im2row.dir/test_im2row.cpp.o"
  "CMakeFiles/test_im2row.dir/test_im2row.cpp.o.d"
  "test_im2row"
  "test_im2row.pdb"
  "test_im2row[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_im2row.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
