file(REMOVE_RECURSE
  "CMakeFiles/test_xnor_engine.dir/test_xnor_engine.cpp.o"
  "CMakeFiles/test_xnor_engine.dir/test_xnor_engine.cpp.o.d"
  "test_xnor_engine"
  "test_xnor_engine.pdb"
  "test_xnor_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xnor_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
