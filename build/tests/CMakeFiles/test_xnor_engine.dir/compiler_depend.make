# Empty compiler generated dependencies file for test_xnor_engine.
# This may be replaced when dependencies are built.
