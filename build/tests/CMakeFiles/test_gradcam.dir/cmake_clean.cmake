file(REMOVE_RECURSE
  "CMakeFiles/test_gradcam.dir/test_gradcam.cpp.o"
  "CMakeFiles/test_gradcam.dir/test_gradcam.cpp.o.d"
  "test_gradcam"
  "test_gradcam.pdb"
  "test_gradcam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gradcam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
