# Empty dependencies file for test_gradcam.
# This may be replaced when dependencies are built.
