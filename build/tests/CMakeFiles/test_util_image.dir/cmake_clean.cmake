file(REMOVE_RECURSE
  "CMakeFiles/test_util_image.dir/test_util_image.cpp.o"
  "CMakeFiles/test_util_image.dir/test_util_image.cpp.o.d"
  "test_util_image"
  "test_util_image.pdb"
  "test_util_image[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
