# Empty dependencies file for test_util_image.
# This may be replaced when dependencies are built.
