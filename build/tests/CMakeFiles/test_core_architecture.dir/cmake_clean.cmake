file(REMOVE_RECURSE
  "CMakeFiles/test_core_architecture.dir/test_core_architecture.cpp.o"
  "CMakeFiles/test_core_architecture.dir/test_core_architecture.cpp.o.d"
  "test_core_architecture"
  "test_core_architecture.pdb"
  "test_core_architecture[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
