# Empty dependencies file for test_core_architecture.
# This may be replaced when dependencies are built.
