# Empty compiler generated dependencies file for test_core_evaluator.
# This may be replaced when dependencies are built.
