file(REMOVE_RECURSE
  "CMakeFiles/test_core_evaluator.dir/test_core_evaluator.cpp.o"
  "CMakeFiles/test_core_evaluator.dir/test_core_evaluator.cpp.o.d"
  "test_core_evaluator"
  "test_core_evaluator.pdb"
  "test_core_evaluator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_evaluator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
