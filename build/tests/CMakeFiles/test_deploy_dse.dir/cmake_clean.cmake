file(REMOVE_RECURSE
  "CMakeFiles/test_deploy_dse.dir/test_deploy_dse.cpp.o"
  "CMakeFiles/test_deploy_dse.dir/test_deploy_dse.cpp.o.d"
  "test_deploy_dse"
  "test_deploy_dse.pdb"
  "test_deploy_dse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deploy_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
