file(REMOVE_RECURSE
  "CMakeFiles/test_integration_artifact.dir/test_integration_artifact.cpp.o"
  "CMakeFiles/test_integration_artifact.dir/test_integration_artifact.cpp.o.d"
  "test_integration_artifact"
  "test_integration_artifact.pdb"
  "test_integration_artifact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_artifact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
