# Empty dependencies file for test_integration_artifact.
# This may be replaced when dependencies are built.
