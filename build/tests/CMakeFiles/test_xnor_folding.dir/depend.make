# Empty dependencies file for test_xnor_folding.
# This may be replaced when dependencies are built.
