file(REMOVE_RECURSE
  "CMakeFiles/test_xnor_folding.dir/test_xnor_folding.cpp.o"
  "CMakeFiles/test_xnor_folding.dir/test_xnor_folding.cpp.o.d"
  "test_xnor_folding"
  "test_xnor_folding.pdb"
  "test_xnor_folding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xnor_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
