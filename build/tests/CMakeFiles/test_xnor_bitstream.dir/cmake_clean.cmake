file(REMOVE_RECURSE
  "CMakeFiles/test_xnor_bitstream.dir/test_xnor_bitstream.cpp.o"
  "CMakeFiles/test_xnor_bitstream.dir/test_xnor_bitstream.cpp.o.d"
  "test_xnor_bitstream"
  "test_xnor_bitstream.pdb"
  "test_xnor_bitstream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xnor_bitstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
