# Empty compiler generated dependencies file for test_xnor_bitstream.
# This may be replaced when dependencies are built.
