file(REMOVE_RECURSE
  "CMakeFiles/test_xnor_random_arch.dir/test_xnor_random_arch.cpp.o"
  "CMakeFiles/test_xnor_random_arch.dir/test_xnor_random_arch.cpp.o.d"
  "test_xnor_random_arch"
  "test_xnor_random_arch.pdb"
  "test_xnor_random_arch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xnor_random_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
