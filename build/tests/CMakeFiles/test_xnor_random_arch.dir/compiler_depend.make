# Empty compiler generated dependencies file for test_xnor_random_arch.
# This may be replaced when dependencies are built.
