file(REMOVE_RECURSE
  "CMakeFiles/test_nn_hinge.dir/test_nn_hinge.cpp.o"
  "CMakeFiles/test_nn_hinge.dir/test_nn_hinge.cpp.o.d"
  "test_nn_hinge"
  "test_nn_hinge.pdb"
  "test_nn_hinge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_hinge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
