# Empty compiler generated dependencies file for test_nn_hinge.
# This may be replaced when dependencies are built.
