# Empty dependencies file for test_deploy_models.
# This may be replaced when dependencies are built.
