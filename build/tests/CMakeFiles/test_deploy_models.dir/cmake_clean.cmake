file(REMOVE_RECURSE
  "CMakeFiles/test_deploy_models.dir/test_deploy_models.cpp.o"
  "CMakeFiles/test_deploy_models.dir/test_deploy_models.cpp.o.d"
  "test_deploy_models"
  "test_deploy_models.pdb"
  "test_deploy_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deploy_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
