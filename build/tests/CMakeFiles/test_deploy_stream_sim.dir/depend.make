# Empty dependencies file for test_deploy_stream_sim.
# This may be replaced when dependencies are built.
