file(REMOVE_RECURSE
  "CMakeFiles/test_deploy_stream_sim.dir/test_deploy_stream_sim.cpp.o"
  "CMakeFiles/test_deploy_stream_sim.dir/test_deploy_stream_sim.cpp.o.d"
  "test_deploy_stream_sim"
  "test_deploy_stream_sim.pdb"
  "test_deploy_stream_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deploy_stream_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
