# Empty compiler generated dependencies file for test_nn_binary.
# This may be replaced when dependencies are built.
