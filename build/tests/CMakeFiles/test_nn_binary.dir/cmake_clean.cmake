file(REMOVE_RECURSE
  "CMakeFiles/test_nn_binary.dir/test_nn_binary.cpp.o"
  "CMakeFiles/test_nn_binary.dir/test_nn_binary.cpp.o.d"
  "test_nn_binary"
  "test_nn_binary.pdb"
  "test_nn_binary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
