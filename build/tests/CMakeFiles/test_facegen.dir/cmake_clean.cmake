file(REMOVE_RECURSE
  "CMakeFiles/test_facegen.dir/test_facegen.cpp.o"
  "CMakeFiles/test_facegen.dir/test_facegen.cpp.o.d"
  "test_facegen"
  "test_facegen.pdb"
  "test_facegen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_facegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
