# Empty dependencies file for test_facegen.
# This may be replaced when dependencies are built.
