# Empty compiler generated dependencies file for test_deploy_pipeline.
# This may be replaced when dependencies are built.
