file(REMOVE_RECURSE
  "CMakeFiles/test_deploy_pipeline.dir/test_deploy_pipeline.cpp.o"
  "CMakeFiles/test_deploy_pipeline.dir/test_deploy_pipeline.cpp.o.d"
  "test_deploy_pipeline"
  "test_deploy_pipeline.pdb"
  "test_deploy_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deploy_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
