# Empty dependencies file for test_facegen_dataset.
# This may be replaced when dependencies are built.
