file(REMOVE_RECURSE
  "CMakeFiles/test_facegen_dataset.dir/test_facegen_dataset.cpp.o"
  "CMakeFiles/test_facegen_dataset.dir/test_facegen_dataset.cpp.o.d"
  "test_facegen_dataset"
  "test_facegen_dataset.pdb"
  "test_facegen_dataset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_facegen_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
