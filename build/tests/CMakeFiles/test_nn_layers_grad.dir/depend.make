# Empty dependencies file for test_nn_layers_grad.
# This may be replaced when dependencies are built.
