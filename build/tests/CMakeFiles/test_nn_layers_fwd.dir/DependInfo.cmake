
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_nn_layers_fwd.cpp" "tests/CMakeFiles/test_nn_layers_fwd.dir/test_nn_layers_fwd.cpp.o" "gcc" "tests/CMakeFiles/test_nn_layers_fwd.dir/test_nn_layers_fwd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bcop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/deploy/CMakeFiles/bcop_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/gradcam/CMakeFiles/bcop_gradcam.dir/DependInfo.cmake"
  "/root/repo/build/src/xnor/CMakeFiles/bcop_xnor.dir/DependInfo.cmake"
  "/root/repo/build/src/facegen/CMakeFiles/bcop_facegen.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/bcop_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/bcop_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/bcop_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bcop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
