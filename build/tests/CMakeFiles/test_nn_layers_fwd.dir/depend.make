# Empty dependencies file for test_nn_layers_fwd.
# This may be replaced when dependencies are built.
