file(REMOVE_RECURSE
  "CMakeFiles/test_nn_layers_fwd.dir/test_nn_layers_fwd.cpp.o"
  "CMakeFiles/test_nn_layers_fwd.dir/test_nn_layers_fwd.cpp.o.d"
  "test_nn_layers_fwd"
  "test_nn_layers_fwd.pdb"
  "test_nn_layers_fwd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_layers_fwd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
