file(REMOVE_RECURSE
  "CMakeFiles/test_core_predictor.dir/test_core_predictor.cpp.o"
  "CMakeFiles/test_core_predictor.dir/test_core_predictor.cpp.o.d"
  "test_core_predictor"
  "test_core_predictor.pdb"
  "test_core_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
