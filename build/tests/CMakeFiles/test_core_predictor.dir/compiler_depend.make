# Empty compiler generated dependencies file for test_core_predictor.
# This may be replaced when dependencies are built.
