file(REMOVE_RECURSE
  "CMakeFiles/test_deploy_mvtu.dir/test_deploy_mvtu.cpp.o"
  "CMakeFiles/test_deploy_mvtu.dir/test_deploy_mvtu.cpp.o.d"
  "test_deploy_mvtu"
  "test_deploy_mvtu.pdb"
  "test_deploy_mvtu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deploy_mvtu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
