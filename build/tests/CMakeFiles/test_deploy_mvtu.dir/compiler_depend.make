# Empty compiler generated dependencies file for test_deploy_mvtu.
# This may be replaced when dependencies are built.
