file(REMOVE_RECURSE
  "CMakeFiles/test_facegen_crowd.dir/test_facegen_crowd.cpp.o"
  "CMakeFiles/test_facegen_crowd.dir/test_facegen_crowd.cpp.o.d"
  "test_facegen_crowd"
  "test_facegen_crowd.pdb"
  "test_facegen_crowd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_facegen_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
