# Empty compiler generated dependencies file for test_facegen_crowd.
# This may be replaced when dependencies are built.
