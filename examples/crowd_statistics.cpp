// Crowd-statistics scenario (paper Sec. IV-B, "high-performance" mode).
//
// A wide crowd frame is processed end to end the way the paper describes:
// locate the faces in the scene, split the frame into per-face tiles,
// classify every tile back-to-back through the folded BNN (keeping the
// accelerator pipeline full -- the mode in which n-CNV reaches ~6400
// classifications per second), and aggregate mask-compliance statistics.
// The example reports detection recall against the scene's ground truth,
// the classification histogram, measured CPU throughput and the modeled
// FPGA throughput at 100 MHz.
#include <chrono>
#include <cstdio>

#include "core/predictor.hpp"
#include "deploy/performance.hpp"
#include "example_util.hpp"
#include "facegen/crowd.hpp"
#include "facegen/dataset.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace bcop;

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    const int frames = args.get_int("frames", 4);
    facegen::CrowdConfig ccfg;
    ccfg.faces = args.get_int("faces-per-frame", 12);

    core::Predictor predictor(examples::load_or_train(
        core::ArchitectureId::kNCnv,
        examples::model_path(core::ArchitectureId::kNCnv)));
    const facegen::FaceLocalizer localizer;

    util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 5)));
    std::array<std::int64_t, facegen::kNumClasses> histogram{};
    std::int64_t placed = 0, detected = 0, classified = 0, correct = 0;
    double classify_seconds = 0;

    for (int frame = 0; frame < frames; ++frame) {
      const auto scene = facegen::render_crowd(ccfg, rng);
      placed += static_cast<std::int64_t>(scene.faces.size());
      const auto detections = localizer.detect(
          scene.canvas, static_cast<int>(scene.faces.size()) + 4);

      // Match detections to ground truth for the recall statistic.
      for (const auto& gt : scene.faces)
        for (const auto& d : detections)
          if (facegen::iou(gt.bbox, d.bbox) > 0.3f) {
            ++detected;
            break;
          }

      // Batch-classify every detected tile.
      if (detections.empty()) continue;
      tensor::Tensor batch(
          tensor::Shape{static_cast<std::int64_t>(detections.size()), 32, 32, 3});
      for (std::size_t i = 0; i < detections.size(); ++i) {
        const auto tile =
            facegen::crop_resize(scene.canvas, detections[i].bbox, 32);
        const auto t = facegen::MaskedFaceDataset::image_to_tensor(tile);
        std::copy(t.data(), t.data() + t.numel(),
                  batch.data() + static_cast<std::int64_t>(i) * t.numel());
      }
      const auto t0 = std::chrono::steady_clock::now();
      const auto results = predictor.classify_batch(batch);
      classify_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();

      for (std::size_t i = 0; i < results.size(); ++i) {
        ++classified;
        ++histogram[static_cast<std::size_t>(results[i].label)];
        // Score correctness against the best-overlapping ground truth.
        const facegen::CrowdFace* best = nullptr;
        float best_iou = 0.3f;
        for (const auto& gt : scene.faces) {
          const float v = facegen::iou(gt.bbox, detections[i].bbox);
          if (v > best_iou) {
            best_iou = v;
            best = &gt;
          }
        }
        if (best && best->label == results[i].label) ++correct;
      }
    }

    std::printf("--- crowd compliance report (%d frames, %lld faces placed) "
                "---\n",
                frames, static_cast<long long>(placed));
    util::AsciiTable t({"class", "count", "share"});
    for (int c = 0; c < facegen::kNumClasses; ++c)
      t.add_row(
          {facegen::class_name(static_cast<facegen::MaskClass>(c)),
           std::to_string(histogram[static_cast<std::size_t>(c)]),
           util::fmt(classified ? 100.0 * histogram[static_cast<std::size_t>(c)] /
                                      classified
                                : 0.0,
                     1) +
               "%"});
    std::printf("%s", t.render().c_str());
    std::printf("detection recall: %.1f%% | tile accuracy (matched tiles): "
                "%.1f%%\n",
                placed ? 100.0 * detected / placed : 0.0,
                classified ? 100.0 * correct / classified : 0.0);
    std::printf("CPU (this host): %.0f classifications/s\n",
                classify_seconds > 0 ? classified / classify_seconds : 0.0);

    const auto perf = deploy::analyze_performance(
        core::layer_specs(core::ArchitectureId::kNCnv));
    std::printf("FPGA model (n-CNV @ 100 MHz, pipeline full): %.0f fps "
                "(bottleneck %s, II=%lld cycles)\n",
                perf.fps(), perf.bottleneck.c_str(),
                static_cast<long long>(perf.initiation_interval));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "crowd_statistics: %s\n", e.what());
    return 1;
  }
}
