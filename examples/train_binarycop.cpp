// Train a Binary-CoP prototype on the synthetic MaskedFace-Net substitute
// and save the model for the benchmarks and examples.
//
//   train_binarycop --arch ncnv --per-class 1500 --epochs 20
//                   --out models/ncnv.bcop
//
// Arches: cnv | ncnv | ucnv | fp32 (the FP32 CNV Grad-CAM baseline).
#include <cstdio>
#include <stdexcept>
#include <string>

#include "core/architecture.hpp"
#include "core/evaluator.hpp"
#include "core/trainer.hpp"
#include "facegen/dataset.hpp"
#include "util/args.hpp"
#include "util/log.hpp"

using namespace bcop;

namespace {

nn::Sequential build(const std::string& arch, std::uint64_t seed) {
  if (arch == "cnv") return core::build_bnn(core::ArchitectureId::kCnv, seed);
  if (arch == "ncnv") return core::build_bnn(core::ArchitectureId::kNCnv, seed);
  if (arch == "ucnv")
    return core::build_bnn(core::ArchitectureId::kMicroCnv, seed);
  if (arch == "fp32") return core::build_fp32_cnv(seed);
  throw std::invalid_argument("unknown --arch '" + arch +
                              "' (want cnv|ncnv|ucnv|fp32)");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    const std::string arch = args.get("arch", "ncnv");
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 7));

    facegen::DatasetConfig dcfg;
    dcfg.per_class_train = args.get_int("per-class", 1200);
    dcfg.per_class_test = args.get_int("test-per-class", 400);
    dcfg.seed = static_cast<std::uint64_t>(args.get_int("data-seed", 0xb1a5));
    util::log_info("generating dataset: ", dcfg.per_class_train,
                   "/class train, ", dcfg.per_class_test, "/class test");
    const auto dataset = facegen::MaskedFaceDataset::generate(dcfg);

    nn::Sequential model = build(arch, seed);
    util::log_info("training ", model.name(), " (",
                   model.parameter_count(), " parameters)");

    core::TrainConfig tcfg;
    tcfg.epochs = args.get_int("epochs", 15);
    tcfg.batch_size = args.get_int("batch", 50);
    tcfg.lr_start = static_cast<float>(args.get_double("lr", 3e-3));
    tcfg.lr_end = static_cast<float>(args.get_double("lr-end", 1e-4));
    tcfg.seed = seed;
    tcfg.eval_every = args.get_int("eval-every", 5);

    core::Trainer trainer(model, tcfg);
    trainer.fit(dataset.train(), dataset.test());

    const auto cm = core::Evaluator::evaluate_model(model, dataset.test());
    std::printf("%s\n", cm.render().c_str());
    std::printf("final test accuracy: %.2f%%\n", 100.0 * cm.accuracy());

    const std::string out = args.get("out", "models/" + arch + ".bcop");
    model.save(out);
    util::log_info("saved model to ", out);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "train_binarycop: %s\n", e.what());
    return 1;
  }
}
