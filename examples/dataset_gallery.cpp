// Render a gallery of the synthetic MaskedFace-Net substitute: a grid of
// subjects per class (plus augmented variants) written as PPM files, and
// the raw-vs-balanced class distribution the paper describes (Sec. IV-A).
#include <cstdio>
#include <filesystem>

#include "facegen/augment.hpp"
#include "facegen/dataset.hpp"
#include "gradcam/overlay.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace bcop;

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    const std::string out_dir = args.get("out", "gallery");
    const int per_class = args.get_int("columns", 8);
    std::filesystem::create_directories(out_dir);

    util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 99)));
    for (int c = 0; c < facegen::kNumClasses; ++c) {
      const auto cls = static_cast<facegen::MaskClass>(c);
      std::vector<util::Image> row, row_aug;
      for (int i = 0; i < per_class; ++i) {
        const auto attrs = facegen::sample_attributes(cls, rng);
        auto rendered = facegen::render_face(attrs, 64);  // 64px for viewing
        util::Image augmented = rendered.image;
        facegen::random_augment(augmented, rng);
        row.push_back(std::move(rendered.image));
        row_aug.push_back(std::move(augmented));
      }
      const std::string base =
          out_dir + "/class_" + facegen::class_short_name(cls);
      util::write_ppm(base + ".ppm", gradcam::hstack(row));
      util::write_ppm(base + "_augmented.ppm", gradcam::hstack(row_aug));
      std::printf("wrote %s.ppm and %s_augmented.ppm\n", base.c_str(),
                  base.c_str());
    }

    // Reproduce the paper's distribution note: raw 51/39/5/5 vs balanced.
    facegen::DatasetConfig dcfg;
    dcfg.per_class_train = 200;
    dcfg.per_class_test = 50;
    const auto ds = facegen::MaskedFaceDataset::generate(dcfg);
    util::AsciiTable t({"class", "raw pool share", "balanced train count"});
    for (int c = 0; c < facegen::kNumClasses; ++c) {
      std::int64_t count = 0;
      for (const auto& s : ds.train())
        if (static_cast<int>(s.label) == c) ++count;
      const double share =
          static_cast<double>(ds.raw_counts()[static_cast<std::size_t>(c)]);
      double total = 0;
      for (const auto rc : ds.raw_counts()) total += static_cast<double>(rc);
      t.add_row({facegen::class_name(static_cast<facegen::MaskClass>(c)),
                 util::fmt(100.0 * share / total, 1) + "%",
                 std::to_string(count)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dataset_gallery: %s\n", e.what());
    return 1;
  }
}
