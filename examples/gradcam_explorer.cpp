// Interactive-style Grad-CAM exploration (paper Sec. III-C / IV-C).
//
// Renders one subject per class, computes the Grad-CAM localization map at
// the conv2_2 output (5x5, as in the paper), writes raw/overlay PPM panels,
// and prints the quantitative attention report against the generator's
// ground-truth landmark regions.
#include <cstdio>
#include <filesystem>

#include "core/architecture.hpp"
#include "example_util.hpp"
#include "facegen/dataset.hpp"
#include "facegen/renderer.hpp"
#include "gradcam/attention.hpp"
#include "gradcam/gradcam.hpp"
#include "gradcam/overlay.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace bcop;

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    const std::string out_dir = args.get("out", "gradcam_out");
    std::filesystem::create_directories(out_dir);

    nn::Sequential model = examples::load_or_train(
        core::ArchitectureId::kNCnv,
        examples::model_path(core::ArchitectureId::kNCnv));
    gradcam::GradCam cam(model, core::gradcam_layer_index(model));

    util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 31)));
    util::AsciiTable t(
        {"class", "predicted", "nose", "mouth", "chin", "mask", "dominant"});
    for (int c = 0; c < facegen::kNumClasses; ++c) {
      const auto cls = static_cast<facegen::MaskClass>(c);
      const auto attrs = facegen::sample_attributes(cls, rng);
      const auto rendered = facegen::render_face(attrs);
      const auto input =
          facegen::MaskedFaceDataset::image_to_tensor(rendered.image);

      const auto result = cam.compute(input);
      const auto report = gradcam::score_attention(result.upsampled, 32, 32,
                                                   rendered.regions);

      const util::Image panel = gradcam::hstack(
          {rendered.image, gradcam::overlay(rendered.image, result.upsampled),
           gradcam::colorize(result.upsampled, 32, 32)});
      const std::string path = out_dir + "/gradcam_" +
                               facegen::class_short_name(cls) + ".ppm";
      util::write_ppm(path, panel);

      t.add_row({facegen::class_short_name(cls),
                 facegen::class_short_name(
                     static_cast<facegen::MaskClass>(result.predicted_class)),
                 util::fmt(report.nose, 2), util::fmt(report.mouth, 2),
                 util::fmt(report.chin, 2), util::fmt(report.mask, 2),
                 report.dominant});
      std::printf("wrote %s\n", path.c_str());
    }
    std::printf("\nattention saliency (mean heat in region / mean heat "
                "overall; >1 = hotter than average):\n%s",
                t.render().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gradcam_explorer: %s\n", e.what());
    return 1;
  }
}
