// Shared helper for the example programs: load a pre-trained model if one
// exists (produced by train_binarycop), otherwise quick-train a small one
// so every example is runnable out of the box.
#pragma once

#include <filesystem>
#include <string>

#include "core/architecture.hpp"
#include "core/trainer.hpp"
#include "facegen/dataset.hpp"
#include "nn/sequential.hpp"
#include "util/log.hpp"

namespace bcop::examples {

inline nn::Sequential load_or_train(core::ArchitectureId arch,
                                    const std::string& path,
                                    int per_class = 400, int epochs = 8) {
  if (std::filesystem::exists(path)) {
    util::log_info("loading pre-trained model from ", path);
    return nn::Sequential::load_file(path);
  }
  util::log_info("no model at ", path, " -- quick-training ",
                 core::arch_name(arch), " (", per_class, "/class, ", epochs,
                 " epochs); run train_binarycop for a full model");
  facegen::DatasetConfig dcfg;
  dcfg.per_class_train = per_class;
  dcfg.per_class_test = 50;
  const auto dataset = facegen::MaskedFaceDataset::generate(dcfg);
  nn::Sequential model = core::build_bnn(arch, /*seed=*/7);
  core::TrainConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.eval_every = 0;
  core::Trainer trainer(model, tcfg);
  trainer.fit(dataset.train(), {});
  return model;
}

/// Default model file locations written by train_binarycop.
inline std::string model_path(core::ArchitectureId arch) {
  switch (arch) {
    case core::ArchitectureId::kCnv: return "models/cnv.bcop";
    case core::ArchitectureId::kNCnv: return "models/ncnv.bcop";
    case core::ArchitectureId::kMicroCnv: return "models/ucnv.bcop";
  }
  return "models/unknown.bcop";
}

}  // namespace bcop::examples
