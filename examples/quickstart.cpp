// Quickstart: the BinaryCoP public API in ~40 lines.
//
// 1. Get a trained BNN (loads models/ncnv.bcop if present, else trains a
//    small one on the spot).
// 2. Wrap it in a core::Predictor -- this folds BatchNorm into thresholds
//    and bit-packs the weights, i.e. builds the network the FPGA would run.
// 3. Render a synthetic subject for each of the four wear classes and
//    classify it.
#include <cstdio>

#include "core/predictor.hpp"
#include "example_util.hpp"
#include "facegen/renderer.hpp"
#include "util/rng.hpp"

using namespace bcop;

int main() {
  try {
    core::Predictor predictor(examples::load_or_train(
        core::ArchitectureId::kNCnv,
        examples::model_path(core::ArchitectureId::kNCnv)));

    util::Rng rng(2026);
    int correct = 0;
    for (int c = 0; c < facegen::kNumClasses; ++c) {
      const auto cls = static_cast<facegen::MaskClass>(c);
      const auto attrs = facegen::sample_attributes(cls, rng);
      const auto rendered = facegen::render_face(attrs);

      const core::Predictor::Result r = predictor.classify(rendered.image);
      std::printf("subject with '%s' mask -> predicted '%s' (%.0f%%), %s\n",
                  facegen::class_name(cls), facegen::class_name(r.label),
                  100.f * r.scores[static_cast<std::size_t>(r.label)],
                  r.admit() ? "gate opens" : "gate stays closed");
      if (r.label == cls) ++correct;
    }
    std::printf("%d/4 classified correctly\n", correct);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "quickstart: %s\n", e.what());
    return 1;
  }
}
