// BinaryCoP as a network service: the full edge-deployment wire.
//
//   camera / curl --> net::HttpServer --> serve::Router --> replicas --> BNN
//
// Starts the HTTP/1.1 front-end (src/net) over a replica fleet (each
// replica: its own engine clone, queue and worker pool; the Router places
// each request on the least-loaded serving replica) and serves until the
// requested duration elapses (or forever with --duration-s 0, until stdin
// closes). Endpoints, payload format and shedding semantics are
// documented in docs/networking.md; quick check:
//
//   # classify a raw 32x32x3 u8 image (3072 bytes)
//   head -c 3072 /dev/urandom > /tmp/img.raw
//   curl -s --data-binary @/tmp/img.raw http://127.0.0.1:8080/v1/classify
//   curl -s http://127.0.0.1:8080/healthz
//   curl -s http://127.0.0.1:8080/metrics | grep bcop_net
//
// Knobs: --port N (default 8080), --arch cnv|ncnv|ucnv, --untrained
// (skip load/quick-train; weights random, latency representative),
// --replicas N, --workers N (per replica), --pin (deal each replica a
// disjoint core set), --http-workers N, --watermark N (503 above this
// per-replica queue depth; 0 sheds everything, -1 disables),
// --duration-s N.
#include <cstdio>
#include <string>
#include <thread>

#include "core/architecture.hpp"
#include "core/predictor.hpp"
#include "example_util.hpp"
#include "net/http_server.hpp"
#include "serve/router.hpp"
#include "util/args.hpp"

using namespace bcop;

namespace {

core::ArchitectureId parse_arch(const std::string& name) {
  if (name == "cnv") return core::ArchitectureId::kCnv;
  if (name == "ncnv") return core::ArchitectureId::kNCnv;
  if (name == "ucnv") return core::ArchitectureId::kMicroCnv;
  throw std::invalid_argument("unknown --arch '" + name +
                              "' (expected cnv|ncnv|ucnv)");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv, {"untrained", "pin"});
  const auto arch = parse_arch(args.get("arch", "ucnv"));

  nn::Sequential model =
      args.get_flag("untrained")
          ? core::build_bnn(arch, /*seed=*/7)
          : examples::load_or_train(arch, examples::model_path(arch));
  const core::Predictor predictor(std::move(model));

  serve::RouterConfig rcfg;
  rcfg.replicas = static_cast<int>(args.get_int("replicas", 2));
  rcfg.batcher.workers = static_cast<unsigned>(args.get_int("workers", 2));
  rcfg.pin_workers = args.get_flag("pin");
  serve::Router router(predictor, rcfg);

  net::HttpServerConfig hcfg;
  hcfg.port = static_cast<std::uint16_t>(args.get_int("port", 8080));
  hcfg.workers = static_cast<unsigned>(args.get_int("http-workers", 2));
  hcfg.shed_watermark = args.get_int("watermark", 48);
  net::HttpServer http(router, hcfg);

  std::printf("serving on http://127.0.0.1:%u\n", http.port());
  std::printf("  POST /v1/classify  (3072 u8 or 12288 f32 bytes)\n");
  std::printf("  GET  /healthz      fleet + per-replica state\n");
  std::printf("  GET  /metrics      Prometheus export\n");
  std::printf("replicas: %d (%s), workers/replica: %u, http workers: %u, "
              "shed watermark: %lld\n",
              rcfg.replicas, rcfg.pin_workers ? "pinned" : "unpinned",
              rcfg.batcher.workers, hcfg.workers,
              static_cast<long long>(hcfg.shed_watermark));

  const int duration_s = args.get_int("duration-s", 0);
  if (duration_s > 0) {
    std::this_thread::sleep_for(std::chrono::seconds(duration_s));
  } else {
    std::printf("press Ctrl-D (EOF) to stop\n");
    while (std::getchar() != EOF) {
    }
  }
  std::printf("shutting down\n");
  return 0;
}
