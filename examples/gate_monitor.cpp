// Single-entrance gate scenario (paper Sec. IV-B, "low-power" mode).
//
// A camera at a speed gate triggers one classification per arriving
// subject. Arrivals follow a Poisson process; between arrivals the
// accelerator idles at ~1.6 W. The example simulates a shift, classifies
// every subject with the folded BNN, decides admission, and reports the
// duty cycle and the average board power predicted by the deploy power
// model -- demonstrating why the event-triggered mode barely exceeds the
// idle floor.
#include <cmath>
#include <cstdio>

#include "core/predictor.hpp"
#include "deploy/performance.hpp"
#include "deploy/power.hpp"
#include "deploy/resource.hpp"
#include "example_util.hpp"
#include "facegen/renderer.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace bcop;

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    const int subjects = args.get_int("subjects", 40);
    const double arrivals_per_min = args.get_double("rate", 6.0);

    core::Predictor predictor(examples::load_or_train(
        core::ArchitectureId::kNCnv,
        examples::model_path(core::ArchitectureId::kNCnv)));

    util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 11)));
    double clock_s = 0.0;
    std::int64_t admitted = 0, denied = 0, correct = 0;
    std::array<std::int64_t, facegen::kNumClasses> denials_by_class{};

    for (int i = 0; i < subjects; ++i) {
      // Exponential inter-arrival times.
      clock_s += -std::log(1.0 - rng.uniform()) * 60.0 / arrivals_per_min;
      const auto cls = static_cast<facegen::MaskClass>(
          rng.uniform_int(0, facegen::kNumClasses - 1));
      const auto rendered =
          facegen::render_face(facegen::sample_attributes(cls, rng));
      const auto r = predictor.classify(rendered.image);
      if (r.label == cls) ++correct;
      if (r.admit()) {
        ++admitted;
      } else {
        ++denied;
        ++denials_by_class[static_cast<std::size_t>(r.label)];
      }
      std::printf("[t=%7.1fs] subject %2d: true=%-22s pred=%-22s %s\n",
                  clock_s, i + 1, facegen::class_name(cls),
                  facegen::class_name(r.label),
                  r.admit() ? "ADMIT" : "DENY");
    }

    // Power accounting: each classification occupies the pipeline for its
    // latency; the rest of the shift is idle.
    const auto specs = core::layer_specs(core::ArchitectureId::kNCnv);
    const auto perf = deploy::analyze_performance(specs);
    const auto power =
        deploy::estimate_power(deploy::estimate_resources(specs, false));
    const double busy_s =
        static_cast<double>(subjects) * perf.latency_ms() / 1e3;
    const double duty = clock_s > 0 ? busy_s / clock_s : 0.0;

    std::printf("\n--- shift summary ---\n");
    util::AsciiTable t({"metric", "value"});
    t.add_row({"subjects", std::to_string(subjects)});
    t.add_row({"classifier accuracy", util::fmt(100.0 * correct / subjects, 1) + "%"});
    t.add_row({"admitted", std::to_string(admitted)});
    t.add_row({"denied", std::to_string(denied)});
    t.add_row({"duty cycle", util::fmt(100.0 * duty, 4) + "%"});
    t.add_row({"idle power", util::fmt(power.idle_w, 2) + " W"});
    t.add_row({"avg board power", util::fmt(power.average_w(duty), 3) + " W"});
    std::printf("%s", t.render().c_str());
    std::printf("event-triggered gating keeps power within %.3f W of the "
                "1.6 W idle floor (paper Sec. IV-B)\n",
                power.average_w(duty) - power.idle_w);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gate_monitor: %s\n", e.what());
    return 1;
  }
}
