// Deployment artifact workflow: fold a trained model into a compact
// "bitstream" file (packed weights + integer thresholds only -- what the
// FPGA's on-chip memories hold), then load it back *without* the training
// graph and serve classifications from it. Demonstrates the memory
// footprint argument of the paper: the artifact fits comfortably in the
// Z7020's on-chip BRAM.
#include <cstdio>
#include <filesystem>

#include "example_util.hpp"
#include "facegen/dataset.hpp"
#include "facegen/renderer.hpp"
#include "tensor/ops.hpp"
#include "util/args.hpp"
#include "xnor/bitstream.hpp"

using namespace bcop;

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    const std::string artifact = args.get("out", "models/ncnv.bcbs");

    // 1. Fold the trained model and export the deployment artifact.
    nn::Sequential model = examples::load_or_train(
        core::ArchitectureId::kNCnv,
        examples::model_path(core::ArchitectureId::kNCnv));
    xnor::XnorNetwork folded = xnor::XnorNetwork::fold(model);
    std::filesystem::create_directories(
        std::filesystem::path(artifact).parent_path());
    xnor::save_bitstream(folded, artifact);
    const auto artifact_bytes = std::filesystem::file_size(artifact);
    std::printf("exported %s: %ju bytes (%.1f KiB); network payload %.1f "
                "KiB of weights+thresholds\n",
                artifact.c_str(), static_cast<std::uintmax_t>(artifact_bytes),
                static_cast<double>(artifact_bytes) / 1024.0,
                static_cast<double>(folded.weight_bits()) / 8.0 / 1024.0);
    std::printf("for scale: a Z7020 holds 280 BRAM18 = %.0f KiB on-chip\n",
                280.0 * 18.0 * 1024.0 / 8.0 / 1024.0);

    // 2. Cold-start an edge device: only the artifact is available.
    const xnor::XnorNetwork deployed = xnor::load_bitstream(artifact);
    util::Rng rng(123);
    int agree = 0;
    for (int i = 0; i < 8; ++i) {
      const auto cls = static_cast<facegen::MaskClass>(i % 4);
      const auto face = facegen::render_face(facegen::sample_attributes(cls, rng));
      const auto x = facegen::MaskedFaceDataset::image_to_tensor(face.image);
      const auto a = folded.predict(x)[0];
      const auto b = deployed.predict(x)[0];
      if (a == b) ++agree;
      std::printf("subject %d (%s): live=%s artifact=%s\n", i,
                  facegen::class_short_name(cls),
                  facegen::class_short_name(static_cast<facegen::MaskClass>(a)),
                  facegen::class_short_name(static_cast<facegen::MaskClass>(b)));
    }
    std::printf("%d/8 predictions identical between live fold and reloaded "
                "artifact (must be 8)\n",
                agree);
    return agree == 8 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bitstream_deploy: %s\n", e.what());
    return 1;
  }
}
