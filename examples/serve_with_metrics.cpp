// Operating the batching server with the observability layer: the demo
// behind docs/observability.md.
//
// Drives a serve::BatchingServer with bursts of rendered faces and then
// reads the process-wide obs::Registry back out -- the same counters,
// gauges and latency histograms an operator would scrape in production:
//
//   bcop_serve_submitted_total / bcop_serve_batches_total   traffic
//   bcop_serve_queue_depth                                  backlog gauge
//   bcop_serve_batch_size                                   coalescing
//   bcop_serve_coalesce_wait_ns / bcop_serve_e2e_latency_ns latency
//   bcop_exec_<shape>_<stage>_ns                            per-stage time
//
// After each burst the example prints a compact summary table from a
// MetricsSnapshot; at the end it writes the full export in Prometheus
// text format or JSON (--format prom|json, --out <path>, default
// stdout). The model is untrained (build_bnn): latency is
// weight-independent, so the telemetry is representative without a
// training phase.
//
// Knobs: --arch cnv|ncnv|ucnv, --bursts N, --burst-size N, --workers N,
// --max-batch N, --max-latency-us N. Try --workers 0 (synchronous mode:
// every batch is size 1, coalesce wait 0) against the default to see the
// coalescing histograms move.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include "core/architecture.hpp"
#include "core/predictor.hpp"
#include "facegen/dataset.hpp"
#include "facegen/renderer.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/stage_profiler.hpp"
#include "serve/batcher.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace bcop;

namespace {

core::ArchitectureId parse_arch(const std::string& name) {
  if (name == "cnv") return core::ArchitectureId::kCnv;
  if (name == "ncnv") return core::ArchitectureId::kNCnv;
  if (name == "ucnv") return core::ArchitectureId::kMicroCnv;
  throw std::invalid_argument("unknown --arch '" + name +
                              "' (expected cnv|ncnv|ucnv)");
}

/// One histogram row per serve-side series, plus the headline counters:
/// the "glanceable" view an operator wants between full exports.
void print_burst_summary(const obs::MetricsSnapshot& snap) {
  util::AsciiTable counters({"counter / gauge", "value"});
  for (const auto& c : snap.counters)
    if (c.name.find("bcop_serve_") == 0)
      counters.add_row({c.name, std::to_string(c.value)});
  for (const auto& g : snap.gauges)
    counters.add_row({g.name, std::to_string(g.value)});
  std::printf("%s", counters.render().c_str());

  util::AsciiTable hist({"histogram", "count", "p50", "p90", "p99"});
  for (const auto& h : snap.histograms) {
    if (h.name.find("bcop_serve_") != 0) continue;
    const bool ns = h.name.find("_ns") != std::string::npos;
    const double scale = ns ? 1e-3 : 1.0;  // ns series shown in us
    hist.add_row({h.name + (ns ? " (us)" : ""), std::to_string(h.count),
                  util::fmt(h.p50 * scale, 1), util::fmt(h.p90 * scale, 1),
                  util::fmt(h.p99 * scale, 1)});
  }
  std::printf("%s", hist.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    const auto arch = parse_arch(args.get("arch", "ncnv"));
    const int bursts = args.get_int("bursts", 3);
    const int burst_size = args.get_int("burst-size", 32);
    const std::string format = args.get("format", "prom");
    const std::string out_path = args.get("out", "");
    if (format != "prom" && format != "json")
      throw std::invalid_argument("--format must be prom or json");

    serve::BatcherConfig cfg;
    cfg.workers = static_cast<unsigned>(args.get_int("workers", 2));
    cfg.max_batch = args.get_int("max-batch", 16);
    cfg.max_latency =
        std::chrono::microseconds(args.get_int("max-latency-us", 2000));

    // Untrained weights: the observability story is about timing, and the
    // plan interpreter's cost does not depend on the weight values.
    const core::Predictor predictor(core::build_bnn(arch, /*seed=*/7));
    obs::StageProfiler::global().set_enabled(true);
    serve::BatchingServer server(predictor, cfg);

    util::Rng rng(0x0b5e);
    std::printf("serving %s: %d bursts x %d requests "
                "(workers=%u, max_batch=%lld, max_latency=%lldus)\n",
                core::arch_name(arch), bursts, burst_size, cfg.workers,
                static_cast<long long>(cfg.max_batch),
                static_cast<long long>(cfg.max_latency.count()));

    for (int burst = 0; burst < bursts; ++burst) {
      std::vector<std::future<core::Predictor::Result>> futures;
      futures.reserve(static_cast<std::size_t>(burst_size));
      for (int i = 0; i < burst_size; ++i) {
        const auto cls = static_cast<facegen::MaskClass>(
            rng.uniform_int(0, facegen::kNumClasses - 1));
        const auto rendered =
            facegen::render_face(facegen::sample_attributes(cls, rng));
        futures.push_back(server.submit(
            facegen::MaskedFaceDataset::image_to_tensor(rendered.image)));
      }
      for (auto& f : futures) f.get();
      std::printf("\n--- after burst %d/%d ---\n", burst + 1, bursts);
      print_burst_summary(obs::Registry::global().snapshot());
    }

    const auto snap = obs::Registry::global().snapshot();
    const std::string text = format == "prom" ? obs::export_prometheus(snap)
                                              : obs::export_json(snap);
    if (out_path.empty()) {
      std::printf("\n--- %s export ---\n%s",
                  format == "prom" ? "Prometheus" : "JSON", text.c_str());
    } else {
      const auto parent = std::filesystem::path(out_path).parent_path();
      if (!parent.empty()) std::filesystem::create_directories(parent);
      std::FILE* f = std::fopen(out_path.c_str(), "w");
      if (!f) throw std::runtime_error("cannot write " + out_path);
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::printf("\n%s export written to %s\n",
                  format == "prom" ? "Prometheus" : "JSON", out_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_with_metrics: %s\n", e.what());
    return 1;
  }
}
